//! Backend discovery by name ([`BackendRegistry`]) and the min-peak
//! multi-backend [`PortfolioBackend`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serenity_ir::{Graph, NodeId};

use crate::backend::{
    AdaptiveBackend, BackendOutcome, BeamBackend, BoundHandle, BruteForceBackend, CompileContext,
    CompileEvent, DfsBackend, DpBackend, GreedyBackend, IncumbentBound, KahnBackend,
    SchedulerBackend,
};
use crate::capacity::CapacityTarget;
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Creates a fresh backend instance.
pub type BackendFactory = Arc<dyn Fn() -> Arc<dyn SchedulerBackend> + Send + Sync>;

/// Name → factory map of scheduling backends.
///
/// [`BackendRegistry::standard`] registers every built-in strategy; callers
/// extend it with [`BackendRegistry::register`] to plug in their own, which
/// the CLI then exposes as `serenity schedule --scheduler <name>`.
///
/// # Example
///
/// ```
/// use serenity_core::registry::BackendRegistry;
///
/// let registry = BackendRegistry::standard();
/// assert!(registry.names().iter().any(|n| n == "dp"));
/// let backend = registry.create("portfolio").unwrap();
/// assert_eq!(backend.name(), "portfolio");
/// ```
#[derive(Clone, Default)]
pub struct BackendRegistry {
    factories: BTreeMap<String, BackendFactory>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry").field("names", &self.names()).finish()
    }
}

impl BackendRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// The registry of built-in backends: `dp`, `adaptive`, `beam`, `kahn`,
    /// `dfs`, `greedy`, `brute-force`, and `portfolio`.
    pub fn standard() -> Self {
        let mut registry = BackendRegistry::empty();
        registry.register("dp", || Arc::new(DpBackend::default()));
        registry.register("adaptive", || Arc::new(AdaptiveBackend::default()));
        registry.register("beam", || Arc::new(BeamBackend::default()));
        registry.register("kahn", || Arc::new(KahnBackend));
        registry.register("dfs", || Arc::new(DfsBackend));
        registry.register("greedy", || Arc::new(GreedyBackend));
        registry.register("brute-force", || Arc::new(BruteForceBackend::default()));
        registry.register("portfolio", || Arc::new(PortfolioBackend::standard()));
        registry
    }

    /// Registers (or replaces) a backend factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Arc<dyn SchedulerBackend> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Instantiates the backend registered under `name`.
    pub fn create(&self, name: &str) -> Option<Arc<dyn SchedulerBackend>> {
        self.factories.get(name).map(|factory| factory())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

/// Runs several backends and keeps the minimum-peak schedule.
///
/// Member errors other than [`ScheduleError::Cancelled`] and
/// [`ScheduleError::DeadlineExceeded`] (e.g. a brute-force
/// [`ScheduleError::TooLarge`], a DP [`ScheduleError::Timeout`]) skip that
/// member; the run fails only when *every* member failed. Cancellation and
/// deadline aborts propagate immediately — a portfolio under a spent
/// deadline returns the abort, not a partial winner.
///
/// # The race
///
/// Members share an [`IncumbentBound`]: every completed member publishes its
/// peak (tagged with its member index as the tie priority), and the
/// branch-and-bound engines (`dp`, `adaptive`, `beam`) prune states that
/// provably lose to the incumbent, exiting with
/// [`ScheduleError::BoundBeaten`] — a race *loss*, counted but never
/// surfaced. With [`PortfolioBackend::threads`] ≥ 2 the members actually
/// race on `std::thread::scope` workers; serially the bound still flows
/// forward, so cheap members sharpen the expensive ones that follow.
/// Winner selection is min-peak with the earlier member keeping ties in
/// both modes, and a member that completes under the bound is bit-identical
/// to its unbounded run, so the raced schedule, winner, and event stream
/// equal the serial ones at any thread count (stats are wall-clock shaped
/// and exempt). Serial mode additionally splits the remaining deadline
/// fairly across unstarted members (floor 5 ms) so one slow member cannot
/// starve the rest, and both modes skip every member after the first
/// *exact* completer (`adaptive`/`dp`/`brute-force`) — no one can beat a
/// provably optimal peak.
///
/// # Capacity targets
///
/// Under a steering [`CapacityTarget`] (objective `MinTraffic`), every
/// completed member is assessed with the Belady simulator and the winner is
/// the lexicographically smallest `(fits, traffic, peak)` rank — earlier
/// member still keeping ties. Members publish through
/// [`BoundHandle::publish_capacity`], which tightens the shared *peak* word
/// only for fitting (zero-traffic) schedules: a spilling incumbent's peak
/// must never prune, because a higher-peak order can still pay less
/// traffic. For the same reason the exact-completer cutoff only fires when
/// the exact member's provably peak-optimal schedule also *fits* — if the
/// optimal peak spills, nothing fits, and a later member may still win on
/// traffic.
///
/// Emits [`CompileEvent::BackendStarted`] per member ran,
/// [`CompileEvent::BackendSkipped`] per member cut off by an exact
/// completer, and one [`CompileEvent::BackendChosen`] for the winner.
pub struct PortfolioBackend {
    backends: Vec<Arc<dyn SchedulerBackend>>,
    threads: usize,
}

/// Serial mode's per-member deadline floor, mirroring the degradation
/// ladder's minimum rung budget.
const MIN_MEMBER_SLICE: Duration = Duration::from_millis(5);

/// Backends whose successful completion is provably footprint-optimal:
/// no later member can beat it, so the portfolio cuts the race off.
fn is_exact(name: &str) -> bool {
    matches!(name, "dp" | "adaptive" | "brute-force")
}

/// The shared-bound setter priority of member `index`: `1..`, leaving 0 for
/// a caller's tie-winning seed and `u16::MAX` for tie-losing seeds.
fn member_priority(index: usize) -> u16 {
    u16::try_from(index + 1).unwrap_or(u16::MAX - 1)
}

/// A member schedule's `(fits, traffic, peak)` rank under a steering
/// capacity target; smaller wins (see
/// [`CapacityReport::rank`](crate::capacity::CapacityReport::rank)).
type CapacityRank = (u64, u64, u64);

/// Assesses a completed member schedule against the steering target,
/// returning `(total_traffic, rank)` for publishing and winner selection.
fn assess_member(
    graph: &Graph,
    schedule: &Schedule,
    target: CapacityTarget,
) -> Result<(u64, CapacityRank), ScheduleError> {
    let report = crate::capacity::assess_for_driver(graph, &schedule.order, target)?;
    Ok((report.total_traffic(), report.rank(schedule.peak_bytes)))
}

/// Whether `rank`'s schedule fits the capacity outright (the first
/// lexicographic component is the "does not fit" flag).
fn rank_fits(rank: &CapacityRank) -> bool {
    rank.0 == 0
}

/// What one raced member produced: its result (with its capacity rank when
/// a steering target is set) plus the events it buffered, replayed in
/// member order after the race settles.
type MemberRun =
    (usize, Result<(BackendOutcome, Option<CapacityRank>), ScheduleError>, Vec<CompileEvent>);

impl std::fmt::Debug for PortfolioBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.backends.iter().map(|b| b.name()).collect();
        f.debug_struct("PortfolioBackend").field("backends", &names).finish()
    }
}

impl PortfolioBackend {
    /// A portfolio over the given members, tried in order (ties keep the
    /// earlier member's schedule).
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn new(backends: Vec<Arc<dyn SchedulerBackend>>) -> Self {
        assert!(!backends.is_empty(), "portfolio needs at least one backend");
        PortfolioBackend { backends, threads: 1 }
    }

    /// Sets the number of racing worker threads (1 = serial, the default).
    /// Results are bit-identical at any thread count; only wall-clock time
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.threads = threads;
        self
    }

    /// The standard portfolio: adaptive budgeting (optimal when it
    /// completes), beam search (polynomial fallback), greedy, Kahn, and DFS.
    pub fn standard() -> Self {
        PortfolioBackend::new(vec![
            Arc::new(AdaptiveBackend::default()),
            Arc::new(BeamBackend::default()),
            Arc::new(GreedyBackend),
            Arc::new(KahnBackend),
            Arc::new(DfsBackend),
        ])
    }

    /// The member backends.
    pub fn members(&self) -> &[Arc<dyn SchedulerBackend>] {
        &self.backends
    }

    fn run<F>(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
        run_member: F,
    ) -> Result<BackendOutcome, ScheduleError>
    where
        F: Fn(&Arc<dyn SchedulerBackend>, &CompileContext) -> Result<BackendOutcome, ScheduleError>
            + Sync,
    {
        // Reuse a caller-installed bound (the pipeline's seeded incumbent
        // then governs the members too); otherwise race on a fresh one.
        let bound = match ctx.bound() {
            Some(handle) => Arc::clone(handle.shared()),
            None => Arc::new(IncumbentBound::new()),
        };
        if self.threads > 1 && self.backends.len() > 1 {
            self.run_raced(graph, ctx, &bound, &run_member)
        } else {
            self.run_serial(graph, ctx, &bound, &run_member)
        }
    }

    fn run_serial<F>(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
        bound: &Arc<IncumbentBound>,
        run_member: &F,
    ) -> Result<BackendOutcome, ScheduleError>
    where
        F: Fn(&Arc<dyn SchedulerBackend>, &CompileContext) -> Result<BackendOutcome, ScheduleError>,
    {
        let target = ctx.capacity().filter(CapacityTarget::steers_search);
        let total = self.backends.len();
        let mut best: Option<(usize, BackendOutcome, Option<CapacityRank>)> = None;
        let mut first_error: Option<ScheduleError> = None;
        let mut bound_beaten: Option<ScheduleError> = None;
        let mut total_stats = ScheduleStats::default();
        for (index, backend) in self.backends.iter().enumerate() {
            ctx.check()?;
            let handle = BoundHandle::new(Arc::clone(bound), member_priority(index));
            let mut member_ctx = ctx.with_bound(Some(handle.clone()));
            if index + 1 < total {
                if let Some(deadline) = ctx.options().deadline {
                    // Fair split: every unstarted member gets an equal share
                    // of what is left (the last one inherits the remainder
                    // whole). The floor never extends the global deadline —
                    // the slice is clamped to it.
                    let remaining = deadline.saturating_sub(ctx.elapsed());
                    let share = remaining / (total - index) as u32;
                    member_ctx = member_ctx.with_deadline_slice(share.max(MIN_MEMBER_SLICE));
                }
            }
            ctx.emit(CompileEvent::BackendStarted { name: backend.name().to_string() });
            let assessed = run_member(backend, &member_ctx).and_then(|outcome| {
                let rank = match target {
                    Some(t) => {
                        let (traffic, rank) = assess_member(graph, &outcome.schedule, t)?;
                        handle.publish_capacity(traffic, outcome.schedule.peak_bytes);
                        Some(rank)
                    }
                    None => {
                        handle.publish(outcome.schedule.peak_bytes);
                        None
                    }
                };
                Ok((outcome, rank))
            });
            match assessed {
                Ok((outcome, rank)) => {
                    total_stats.absorb(&outcome.stats);
                    let better =
                        best.as_ref().is_none_or(|(_, b, best_rank)| match (&rank, best_rank) {
                            (Some(r), Some(br)) => r < br,
                            _ => outcome.schedule.peak_bytes < b.schedule.peak_bytes,
                        });
                    if better {
                        best = Some((index, outcome, rank));
                    }
                    if is_exact(backend.name()) && rank.as_ref().is_none_or(rank_fits) {
                        // A completed exact member is provably optimal: no
                        // later member can beat it, only tie and lose. Under
                        // a steering target this holds only when the optimal
                        // peak *fits* (rank (0, 0, optimal)); a spilling
                        // optimum can still lose on traffic.
                        for skipped in &self.backends[index + 1..] {
                            ctx.emit(CompileEvent::BackendSkipped {
                                name: skipped.name().to_string(),
                            });
                        }
                        total_stats.race_cutoffs += (total - index - 1) as u64;
                        break;
                    }
                }
                Err(ScheduleError::Cancelled) => return Err(ScheduleError::Cancelled),
                Err(deadline @ ScheduleError::DeadlineExceeded { .. }) => {
                    // A member exhausting its *slice* is a loss; only the
                    // global deadline (re-checked here) aborts the race.
                    ctx.check()?;
                    first_error.get_or_insert(deadline);
                }
                Err(beaten @ ScheduleError::BoundBeaten { .. }) => {
                    total_stats.bound_beaten_exits += 1;
                    bound_beaten.get_or_insert(beaten);
                }
                Err(other) => {
                    first_error.get_or_insert(other);
                }
            }
        }
        self.finish(ctx, best.map(|(i, o, _)| (i, o)), total_stats, first_error, bound_beaten)
    }

    /// Races the members across `self.threads` scoped workers. Each member
    /// buffers its events and publishes its completed peak to the shared
    /// bound; afterwards the buffers are replayed in *member order* up to
    /// the earliest exact completer — exactly the serial stream. Members
    /// past that cut are dropped unabsorbed (serial never ran them).
    fn run_raced<F>(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
        bound: &Arc<IncumbentBound>,
        run_member: &F,
    ) -> Result<BackendOutcome, ScheduleError>
    where
        F: Fn(&Arc<dyn SchedulerBackend>, &CompileContext) -> Result<BackendOutcome, ScheduleError>
            + Sync,
    {
        let target = ctx.capacity().filter(CapacityTarget::steers_search);
        let total = self.backends.len();
        ctx.check()?;
        let next = AtomicUsize::new(0);
        // Smallest member index known to be an exact completer; members
        // beyond it need not start. Only ever shrinks, so a skip decided
        // against a stale value is still a skip against the final cut.
        let cutoff = AtomicUsize::new(total);
        let workers = self.threads.min(total);
        let mut runs: Vec<MemberRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, cutoff) = (&next, &cutoff);
                    scope.spawn(move || {
                        let mut out: Vec<MemberRun> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= total {
                                break;
                            }
                            if index > cutoff.load(Ordering::Relaxed) {
                                continue;
                            }
                            let backend = &self.backends[index];
                            let buffer: Arc<Mutex<Vec<CompileEvent>>> =
                                Arc::new(Mutex::new(Vec::new()));
                            let sink = Arc::clone(&buffer);
                            let handle =
                                BoundHandle::new(Arc::clone(bound), member_priority(index));
                            let member_ctx = ctx.with_bound(Some(handle.clone())).with_event_sink(
                                Some(Arc::new(move |e: &CompileEvent| {
                                    sink.lock().expect("event buffer poisoned").push(e.clone());
                                })),
                            );
                            let result = run_member(backend, &member_ctx).and_then(|outcome| {
                                let rank = match target {
                                    Some(t) => {
                                        let (traffic, rank) =
                                            assess_member(graph, &outcome.schedule, t)?;
                                        handle
                                            .publish_capacity(traffic, outcome.schedule.peak_bytes);
                                        Some(rank)
                                    }
                                    None => {
                                        handle.publish(outcome.schedule.peak_bytes);
                                        None
                                    }
                                };
                                if is_exact(backend.name()) && rank.as_ref().is_none_or(rank_fits) {
                                    cutoff.fetch_min(index, Ordering::Relaxed);
                                }
                                Ok((outcome, rank))
                            });
                            let events =
                                std::mem::take(&mut *buffer.lock().expect("event buffer poisoned"));
                            out.push((index, result, events));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("portfolio worker does not panic"))
                .collect()
        });
        runs.sort_unstable_by_key(|(index, _, _)| *index);

        // The serial cut: serial mode stops after the earliest exact
        // completer, so only members up to it contribute results, stats,
        // and events; everyone later is "skipped" no matter what the race
        // happened to execute.
        let exact_cut = runs
            .iter()
            .filter(|(index, result, _)| match result {
                // Same gate as the serial cut: the exact member's optimal
                // peak must also fit when a steering target is set.
                Ok((_, rank)) => {
                    is_exact(self.backends[*index].name()) && rank.as_ref().is_none_or(rank_fits)
                }
                Err(_) => false,
            })
            .map(|(index, _, _)| *index)
            .min();
        let cut = exact_cut.unwrap_or(total - 1);

        let mut best: Option<(usize, BackendOutcome, Option<CapacityRank>)> = None;
        let mut first_error: Option<ScheduleError> = None;
        let mut bound_beaten: Option<ScheduleError> = None;
        let mut total_stats = ScheduleStats::default();
        for (index, result, events) in runs {
            if index > cut {
                continue;
            }
            ctx.emit(CompileEvent::BackendStarted {
                name: self.backends[index].name().to_string(),
            });
            for event in events {
                ctx.emit(event);
            }
            match result {
                Ok((outcome, rank)) => {
                    total_stats.absorb(&outcome.stats);
                    let better =
                        best.as_ref().is_none_or(|(_, b, best_rank)| match (&rank, best_rank) {
                            (Some(r), Some(br)) => r < br,
                            _ => outcome.schedule.peak_bytes < b.schedule.peak_bytes,
                        });
                    if better {
                        best = Some((index, outcome, rank));
                    }
                }
                Err(ScheduleError::Cancelled) => return Err(ScheduleError::Cancelled),
                Err(deadline @ ScheduleError::DeadlineExceeded { .. }) => {
                    // No slicing in raced mode: a member deadline is the
                    // global one, so this re-check propagates the abort.
                    ctx.check()?;
                    first_error.get_or_insert(deadline);
                }
                Err(beaten @ ScheduleError::BoundBeaten { .. }) => {
                    total_stats.bound_beaten_exits += 1;
                    bound_beaten.get_or_insert(beaten);
                }
                Err(other) => {
                    first_error.get_or_insert(other);
                }
            }
        }
        if exact_cut.is_some() {
            for skipped in &self.backends[cut + 1..] {
                ctx.emit(CompileEvent::BackendSkipped { name: skipped.name().to_string() });
            }
            total_stats.race_cutoffs += (total - cut - 1) as u64;
        }
        self.finish(ctx, best.map(|(i, o, _)| (i, o)), total_stats, first_error, bound_beaten)
    }

    fn finish(
        &self,
        ctx: &CompileContext,
        best: Option<(usize, BackendOutcome)>,
        total_stats: ScheduleStats,
        first_error: Option<ScheduleError>,
        bound_beaten: Option<ScheduleError>,
    ) -> Result<BackendOutcome, ScheduleError> {
        match best {
            Some((index, mut outcome)) => {
                ctx.emit(CompileEvent::BackendChosen {
                    name: self.backends[index].name().to_string(),
                    peak_bytes: outcome.schedule.peak_bytes,
                });
                outcome.stats = total_stats;
                Ok(outcome)
            }
            // Every member lost. When losses were to a caller-seeded
            // incumbent, "the incumbent stands" (BoundBeaten) outranks the
            // incidental member errors — consumers treat it as keep-the-
            // original, never as a failure.
            None => Err(bound_beaten.or(first_error).expect("at least one member ran and failed")),
        }
    }
}

impl SchedulerBackend for PortfolioBackend {
    fn name(&self) -> &str {
        "portfolio"
    }

    /// Members and their order are the whole configuration: the winner is
    /// min-peak with ties kept by the *earlier* member, so both membership
    /// and sequence shape the result. `threads` is excluded — raced runs
    /// are bit-identical to serial by construction, so thread counts share
    /// cache entries (like the DP's worker count).
    fn config_fingerprint(&self) -> u64 {
        let parts: Vec<u64> = self.backends.iter().map(|b| b.config_fingerprint()).collect();
        crate::backend::config_fingerprint_of(self.name(), &parts)
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        self.run(graph, ctx, |backend, member_ctx| backend.schedule(graph, member_ctx))
    }

    fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        self.run(graph, ctx, |backend, member_ctx| {
            backend.schedule_with_prefix(graph, prefix, member_ctx)
        })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;
    use std::time::Duration;

    use super::*;
    use crate::backend::CompileOptions;
    use serenity_ir::random_dag::independent_branches;

    #[test]
    fn standard_registry_has_all_strategies() {
        let registry = BackendRegistry::standard();
        for name in ["dp", "adaptive", "beam", "kahn", "dfs", "greedy", "brute-force", "portfolio"]
        {
            assert!(registry.contains(name), "missing {name}");
            assert_eq!(registry.create(name).unwrap().name(), name);
        }
        assert!(registry.create("bogus").is_none());
    }

    #[test]
    fn custom_backends_can_be_registered() {
        let mut registry = BackendRegistry::standard();
        registry.register("my-kahn", || Arc::new(KahnBackend));
        assert!(registry.contains("my-kahn"));
        // The instance reports its own name; the registry key is the alias.
        assert_eq!(registry.create("my-kahn").unwrap().name(), "kahn");
    }

    #[test]
    fn portfolio_keeps_the_minimum_peak() {
        let graph = independent_branches(6, 24);
        let ctx = CompileContext::unconstrained();
        let portfolio = PortfolioBackend::standard();
        let outcome = portfolio.schedule(&graph, &ctx).unwrap();
        for member in portfolio.members() {
            if let Ok(single) = member.schedule(&graph, &ctx) {
                assert!(
                    outcome.schedule.peak_bytes <= single.schedule.peak_bytes,
                    "portfolio lost to {}",
                    member.name()
                );
            }
        }
    }

    #[test]
    fn portfolio_survives_failing_members() {
        // A portfolio whose first member always rejects still answers.
        let portfolio =
            PortfolioBackend::new(vec![Arc::new(BruteForceBackend::new(1)), Arc::new(KahnBackend)]);
        let graph = independent_branches(5, 8);
        let outcome = portfolio.schedule(&graph, &CompileContext::unconstrained()).unwrap();
        assert_eq!(outcome.schedule.order.len(), graph.len());
    }

    #[test]
    fn portfolio_of_only_failures_reports_the_first_error() {
        let portfolio = PortfolioBackend::new(vec![Arc::new(BruteForceBackend::new(1))]);
        let graph = independent_branches(5, 8);
        let err = portfolio.schedule(&graph, &CompileContext::unconstrained()).unwrap_err();
        assert!(matches!(err, ScheduleError::TooLarge { .. }));
    }

    #[test]
    fn portfolio_propagates_deadline() {
        let graph = independent_branches(6, 24);
        let ctx = CompileContext::new(CompileOptions::new().deadline(Duration::ZERO));
        let err = PortfolioBackend::standard().schedule(&graph, &ctx).unwrap_err();
        assert!(matches!(err, ScheduleError::DeadlineExceeded { .. }));
    }

    #[test]
    fn portfolio_emits_choice_events_and_race_cutoffs() {
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let ctx = CompileContext::new(
            CompileOptions::new().on_event(move |e| sink.lock().unwrap().push(e.clone())),
        );
        let graph = independent_branches(4, 8);
        let outcome = PortfolioBackend::standard().schedule(&graph, &ctx).unwrap();
        let events = seen.lock().unwrap();
        // Adaptive (member 0) is exact and completes, so the race is cut
        // off immediately: one member started, the other four skipped.
        let started =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendStarted { .. })).count();
        let skipped =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendSkipped { .. })).count();
        assert_eq!(started, 1);
        assert_eq!(skipped, 4);
        assert_eq!(outcome.stats.race_cutoffs, 4);
        assert!(events
            .iter()
            .any(|e| matches!(e, CompileEvent::BackendChosen { name, .. } if name == "adaptive")));
    }

    /// A graph where order matters (the DP prunes against the bound) —
    /// mirrors `dp::tests::branchy`.
    fn branchy() -> Graph {
        let mut g = Graph::new("branchy");
        let a = g.add_opaque("a", 10, &[]).unwrap();
        let s1 = g.add_opaque("s1", 10, &[a]).unwrap();
        let s2 = g.add_opaque("s2", 2, &[s1]).unwrap();
        let b1 = g.add_opaque("b1", 100, &[a]).unwrap();
        let sink = g.add_opaque("sink", 2, &[s2, b1]).unwrap();
        g.mark_output(sink);
        g
    }

    /// A portfolio whose exact member runs *last*, so every member
    /// executes and the cheap ones sharpen the DP via the shared bound.
    fn race_portfolio() -> PortfolioBackend {
        PortfolioBackend::new(vec![
            Arc::new(GreedyBackend),
            Arc::new(KahnBackend),
            Arc::new(BeamBackend::default()),
            Arc::new(DpBackend::default()),
        ])
    }

    fn run_collecting_with(
        portfolio: &PortfolioBackend,
        graph: &Graph,
        options: CompileOptions,
    ) -> (BackendOutcome, Vec<CompileEvent>) {
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let ctx =
            CompileContext::new(options.on_event(move |e| sink.lock().unwrap().push(e.clone())));
        let outcome = portfolio.schedule(graph, &ctx).unwrap();
        drop(ctx);
        let events = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        (outcome, events)
    }

    fn run_collecting(
        portfolio: &PortfolioBackend,
        graph: &Graph,
    ) -> (BackendOutcome, Vec<CompileEvent>) {
        run_collecting_with(portfolio, graph, CompileOptions::new())
    }

    #[test]
    fn raced_portfolio_is_bit_identical_to_serial() {
        for graph in [branchy(), independent_branches(6, 24)] {
            let (serial, serial_events) = run_collecting(&race_portfolio(), &graph);
            for threads in [2, 8] {
                let raced = race_portfolio().threads(threads);
                let (outcome, events) = run_collecting(&raced, &graph);
                assert_eq!(
                    outcome.schedule, serial.schedule,
                    "schedule diverged at {threads} threads"
                );
                assert_eq!(events, serial_events, "event stream diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn serial_portfolio_prunes_the_dp_against_earlier_members() {
        // Kahn runs first and publishes its (suboptimal, 120-byte) peak;
        // the DP then prunes the losing branch against the incumbent and
        // still finds the true 112-byte optimum.
        let portfolio =
            PortfolioBackend::new(vec![Arc::new(KahnBackend), Arc::new(DpBackend::default())]);
        let (outcome, _) = run_collecting(&portfolio, &branchy());
        assert!(outcome.stats.bound_pruned > 0, "expected bound pruning, got {outcome:?}");
        assert_eq!(outcome.schedule.peak_bytes, 112);
    }

    /// Delegates to an inner backend under a different name after a pause —
    /// lets tests invert wall-clock completion order deterministically.
    struct SlowBackend {
        inner: Arc<dyn SchedulerBackend>,
        name: &'static str,
        pause: Duration,
    }

    impl SchedulerBackend for SlowBackend {
        fn name(&self) -> &str {
            self.name
        }

        fn schedule(
            &self,
            graph: &Graph,
            ctx: &CompileContext,
        ) -> Result<BackendOutcome, ScheduleError> {
            std::thread::sleep(self.pause);
            self.inner.schedule(graph, ctx)
        }
    }

    #[test]
    fn ties_keep_the_earlier_member_even_when_it_finishes_last() {
        // Member 0 delegates to Kahn but sleeps first; member 1 (dfs)
        // finishes long before it in wall-clock. On a graph where every
        // order has the same peak they tie — and the *earlier* member must
        // still win, in both serial and raced mode.
        let graph = independent_branches(5, 16);
        for threads in [1, 2] {
            let portfolio = PortfolioBackend::new(vec![
                Arc::new(SlowBackend {
                    inner: Arc::new(KahnBackend),
                    name: "slow-kahn",
                    pause: Duration::from_millis(30),
                }),
                Arc::new(DfsBackend),
            ])
            .threads(threads);
            let (outcome, events) = run_collecting(&portfolio, &graph);
            let chosen = events
                .iter()
                .find_map(|e| match e {
                    CompileEvent::BackendChosen { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .unwrap();
            assert_eq!(chosen, "slow-kahn", "tie lost at {threads} threads");
            assert!(!outcome.schedule.order.is_empty());
        }
    }

    #[test]
    fn bound_beaten_members_never_surface_when_anyone_completes() {
        // Seed the shared bound at the optimum with the tie-winning
        // priority: the DP cannot match it and exits BoundBeaten. Greedy
        // ignores the bound and completes, so the portfolio still answers —
        // the race loss shows up only in the stats.
        let graph = branchy();
        let optimal = DpBackend::default()
            .schedule(&graph, &CompileContext::unconstrained())
            .unwrap()
            .schedule
            .peak_bytes;
        let portfolio =
            PortfolioBackend::new(vec![Arc::new(DpBackend::default()), Arc::new(GreedyBackend)]);
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_incumbent(optimal)));
        let outcome = portfolio.schedule(&graph, &ctx).unwrap();
        assert_eq!(outcome.stats.bound_beaten_exits, 1);
        assert!(outcome.schedule.peak_bytes >= optimal);
    }

    #[test]
    fn seeded_portfolio_where_every_member_loses_reports_bound_beaten() {
        // All members consult the bound and all lose: the incumbent stands,
        // reported as BoundBeaten for the caller (the pipeline) to absorb.
        let graph = branchy();
        let optimal = DpBackend::default()
            .schedule(&graph, &CompileContext::unconstrained())
            .unwrap()
            .schedule
            .peak_bytes;
        let portfolio = PortfolioBackend::new(vec![Arc::new(DpBackend::default())]);
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_incumbent(optimal)));
        let err = portfolio.schedule(&graph, &ctx).unwrap_err();
        assert_eq!(err, ScheduleError::BoundBeaten { bound: optimal });
    }

    /// `branchy()`'s optimal peak is 112 and its largest single working set
    /// is 110 (`a` + `b1`), so capacity 111 is feasible-but-spilling for
    /// every schedule while 112 lets the optimum fit outright.
    const BRANCHY_SPILL_CAPACITY: u64 = 111;

    #[test]
    fn spilling_exact_member_does_not_cut_off_the_race() {
        let graph = branchy();
        let portfolio =
            PortfolioBackend::new(vec![Arc::new(DpBackend::default()), Arc::new(KahnBackend)]);

        // At 111 the provably peak-optimal schedule still spills, so Kahn
        // must get its chance to win on traffic: both members run.
        let spilling = CompileOptions::new()
            .capacity_target(CapacityTarget::min_traffic(BRANCHY_SPILL_CAPACITY));
        let (_, events) = run_collecting_with(&portfolio, &graph, spilling);
        let started =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendStarted { .. })).count();
        let skipped =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendSkipped { .. })).count();
        assert_eq!((started, skipped), (2, 0), "spilling exact member must not cut the race");

        // At 112 the optimum fits (zero traffic): nothing can beat it, so
        // the cutoff fires exactly as in the peak-only race.
        let fitting = CompileOptions::new().capacity_target(CapacityTarget::min_traffic(112));
        let (outcome, events) = run_collecting_with(&portfolio, &graph, fitting);
        let started =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendStarted { .. })).count();
        let skipped =
            events.iter().filter(|e| matches!(e, CompileEvent::BackendSkipped { .. })).count();
        assert_eq!((started, skipped), (1, 1), "fitting exact member must cut the race");
        assert_eq!(outcome.schedule.peak_bytes, 112);
    }

    #[test]
    fn capacity_winner_has_min_rank_across_members() {
        let graph = branchy();
        let target = CapacityTarget::min_traffic(BRANCHY_SPILL_CAPACITY);
        let portfolio = race_portfolio();
        let (outcome, _) =
            run_collecting_with(&portfolio, &graph, CompileOptions::new().capacity_target(target));
        let winner = crate::capacity::assess(&graph, &outcome.schedule.order, target)
            .unwrap()
            .rank(outcome.schedule.peak_bytes);
        for member in portfolio.members() {
            let single =
                member.schedule(&graph, &CompileContext::unconstrained()).unwrap().schedule;
            let rank = crate::capacity::assess(&graph, &single.order, target)
                .unwrap()
                .rank(single.peak_bytes);
            assert!(winner <= rank, "portfolio rank {winner:?} lost to {}", member.name());
        }
    }

    #[test]
    fn raced_capacity_portfolio_is_bit_identical_to_serial() {
        let graph = branchy();
        for capacity in [BRANCHY_SPILL_CAPACITY, 200] {
            let options =
                || CompileOptions::new().capacity_target(CapacityTarget::min_traffic(capacity));
            let (serial, serial_events) = run_collecting_with(&race_portfolio(), &graph, options());
            for threads in [2, 8] {
                let raced = race_portfolio().threads(threads);
                let (outcome, events) = run_collecting_with(&raced, &graph, options());
                assert_eq!(
                    outcome.schedule, serial.schedule,
                    "schedule diverged at {threads} threads, capacity {capacity}"
                );
                assert_eq!(
                    events, serial_events,
                    "event stream diverged at {threads} threads, capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn serial_deadline_is_split_fairly_across_members() {
        // With a generous deadline every member still completes: slicing
        // must not reject members that fit comfortably in their share.
        let graph = independent_branches(5, 16);
        let ctx = CompileContext::new(CompileOptions::new().deadline(Duration::from_secs(30)));
        let outcome = race_portfolio().schedule(&graph, &ctx).unwrap();
        assert_eq!(outcome.schedule.order.len(), graph.len());
    }
}
