//! Baseline schedulers SERENITY is evaluated against (§2.3, §4).
//!
//! * [`kahn`] — the TensorFlow-Lite-style topological order (the paper's
//!   comparison baseline throughout §4).
//! * [`dfs`] — depth-first order, another common framework default.
//! * [`random`] — uniform scheduling decisions (the Figure 3(b) population).
//! * [`greedy`] — a memory-aware one-step-lookahead heuristic: cheap, often
//!   good, but not optimal; included to show the gap DP closes.
//! * [`brute_force`] — exhaustive search over all topological orders with
//!   branch-and-bound pruning: the `Θ(|V|!)` optimality oracle used by tests
//!   and the Appendix D complexity comparison.

use rand::Rng;
use serenity_ir::mem::CostModel;
use serenity_ir::{topo, Graph, GraphError, NodeId, NodeSet};

use crate::backend::CompileContext;
use crate::{Schedule, ScheduleError};

/// Kahn's-algorithm schedule (the TensorFlow Lite baseline).
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic (possible only for
/// deserialized graphs).
pub fn kahn(graph: &Graph) -> Result<Schedule, GraphError> {
    Schedule::from_order(graph, topo::kahn(graph))
}

/// Depth-first schedule.
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic.
pub fn dfs(graph: &Graph) -> Result<Schedule, GraphError> {
    Schedule::from_order(graph, topo::dfs(graph))
}

/// A uniformly random scheduling-decision order.
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic.
pub fn random<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Result<Schedule, GraphError> {
    Schedule::from_order(graph, topo::random(graph, rng))
}

/// Greedy memory-aware heuristic: at every step, among the ready nodes pick
/// the one minimizing the footprint right after allocation-and-free
/// (ties: larger immediate free, then node id).
///
/// Runs in `O(|V|² · deg)`; finds good schedules on many graphs but is not
/// optimal — see the `greedy_is_not_optimal` test for a counterexample.
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic.
pub fn greedy(graph: &Graph) -> Result<Schedule, GraphError> {
    let n = graph.len();
    let cost = CostModel::new(graph);
    let mut indegree: Vec<usize> = graph.node_ids().map(|id| graph.indegree(id)).collect();
    let mut ready: Vec<NodeId> = graph.node_ids().filter(|&id| indegree[id.index()] == 0).collect();
    let mut scheduled = NodeSet::with_capacity(n);
    let mut order = Vec::with_capacity(n);
    let mut mu = 0u64;

    while !ready.is_empty() {
        // Score each candidate: footprint after its allocation and frees.
        let mut best: Option<(u64, u64, NodeId, usize)> = None;
        for (i, &u) in ready.iter().enumerate() {
            let alloc = cost.alloc_bytes(&scheduled, u);
            let freed = cost.free_bytes(&scheduled, u);
            let after = mu + alloc - freed;
            let candidate = (after, u64::MAX - freed, u, i);
            if best.is_none_or(|b| (candidate.0, candidate.1, candidate.2) < (b.0, b.1, b.2)) {
                best = Some(candidate);
            }
        }
        let (after, _, u, idx) = best.expect("ready set is non-empty");
        ready.swap_remove(idx);
        order.push(u);
        mu = after;
        scheduled.insert(u);
        for &s in graph.succs(u) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    Schedule::from_order(graph, order)
}

/// Exhaustive branch-and-bound search over all topological orders: the
/// optimality oracle. Worst case `Θ(|V|!)`; intended for graphs of at most
/// ~14 nodes (tests, Appendix D benchmarks).
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic.
///
/// # Panics
///
/// Panics if the graph has more than `max_nodes` nodes (default 20) — call
/// sites must opt in to the factorial blow-up consciously.
pub fn brute_force(graph: &Graph) -> Result<Schedule, GraphError> {
    brute_force_capped(graph, 20)
}

/// [`brute_force`] with an explicit node-count cap.
///
/// # Errors
///
/// Returns a graph error if `graph` is cyclic.
///
/// # Panics
///
/// Panics if `graph.len() > max_nodes`.
pub fn brute_force_capped(graph: &Graph, max_nodes: usize) -> Result<Schedule, GraphError> {
    match brute_force_capped_ctx(graph, max_nodes, &CompileContext::unconstrained()) {
        Ok(schedule) => Ok(schedule),
        Err(ScheduleError::Graph(e)) => Err(e),
        Err(other) => unreachable!("unconstrained context cannot abort: {other}"),
    }
}

/// [`brute_force_capped`] governed by a [`CompileContext`]: cancellation
/// and the deadline are polled every few hundred search-tree nodes.
///
/// # Errors
///
/// As [`brute_force_capped`], plus [`ScheduleError::Cancelled`] /
/// [`ScheduleError::DeadlineExceeded`].
///
/// # Panics
///
/// Panics if `graph.len() > max_nodes`.
pub fn brute_force_capped_ctx(
    graph: &Graph,
    max_nodes: usize,
    ctx: &CompileContext,
) -> Result<Schedule, ScheduleError> {
    assert!(
        graph.len() <= max_nodes,
        "brute force on {} nodes exceeds the cap of {max_nodes}",
        graph.len()
    );
    if graph.is_empty() {
        return Ok(Schedule { order: Vec::new(), peak_bytes: 0 });
    }
    ctx.check()?;
    let mut search = BruteForce {
        cost: CostModel::new(graph),
        graph,
        indegree: graph.node_ids().map(|id| graph.indegree(id)).collect(),
        scheduled: NodeSet::with_capacity(graph.len()),
        prefix: Vec::with_capacity(graph.len()),
        best_order: None,
        best_peak: u64::MAX,
        visited: 0,
    };
    let ready: Vec<NodeId> = graph.node_ids().filter(|&id| graph.indegree(id) == 0).collect();
    search.recurse(&ready, 0, 0, ctx)?;
    let order = search.best_order.expect("acyclic graph has at least one order");
    Ok(Schedule::from_order(graph, order)?)
}

struct BruteForce<'g> {
    cost: CostModel<'g>,
    graph: &'g Graph,
    indegree: Vec<usize>,
    scheduled: NodeSet,
    prefix: Vec<NodeId>,
    best_order: Option<Vec<NodeId>>,
    best_peak: u64,
    /// Search-tree nodes visited, for periodic context polling.
    visited: u64,
}

impl BruteForce<'_> {
    fn recurse(
        &mut self,
        ready: &[NodeId],
        mu: u64,
        peak: u64,
        ctx: &CompileContext,
    ) -> Result<(), ScheduleError> {
        self.visited += 1;
        if self.visited & 0x3FF == 0 {
            ctx.check()?;
        }
        // Branch-and-bound: a prefix whose peak already matches or exceeds
        // the incumbent cannot improve on it.
        if peak >= self.best_peak {
            return Ok(());
        }
        if self.prefix.len() == self.graph.len() {
            self.best_peak = peak;
            self.best_order = Some(self.prefix.clone());
            return Ok(());
        }
        for (i, &u) in ready.iter().enumerate() {
            let mu_after_alloc = mu + self.cost.alloc_bytes(&self.scheduled, u);
            let peak_next = peak.max(mu_after_alloc);
            let mu_next = mu_after_alloc - self.cost.free_bytes(&self.scheduled, u);
            // Mutate.
            self.prefix.push(u);
            self.scheduled.insert(u);
            let mut next_ready: Vec<NodeId> =
                ready.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).collect();
            for &s in self.graph.succs(u) {
                self.indegree[s.index()] -= 1;
                if self.indegree[s.index()] == 0 {
                    next_ready.push(s);
                }
            }
            let result = self.recurse(&next_ready, mu_next, peak_next, ctx);
            // Undo (also on abort, to keep the borrow checker honest).
            for &s in self.graph.succs(u) {
                self.indegree[s.index()] += 1;
            }
            self.scheduled.remove(u);
            self.prefix.pop();
            result?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use serenity_ir::random_dag::{random_dag, RandomDagConfig};
    use serenity_ir::topo::is_order;

    fn graphs(count: usize, nodes: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                random_dag(
                    &RandomDagConfig { nodes, edge_prob: 0.3, ..Default::default() },
                    &mut rng,
                )
            })
            .collect()
    }

    #[test]
    fn all_baselines_produce_valid_orders() {
        let mut rng = StdRng::seed_from_u64(1);
        for g in graphs(5, 10, 42) {
            assert!(is_order(&g, &kahn(&g).unwrap().order));
            assert!(is_order(&g, &dfs(&g).unwrap().order));
            assert!(is_order(&g, &random(&g, &mut rng).unwrap().order));
            assert!(is_order(&g, &greedy(&g).unwrap().order));
            assert!(is_order(&g, &brute_force(&g).unwrap().order));
        }
    }

    #[test]
    fn brute_force_matches_dp_on_small_graphs() {
        for g in graphs(10, 9, 7) {
            let bf = brute_force(&g).unwrap();
            let dp = DpScheduler::new().schedule(&g).unwrap();
            assert_eq!(bf.peak_bytes, dp.schedule.peak_bytes, "graph {g}");
        }
    }

    #[test]
    fn greedy_never_beats_optimal() {
        for g in graphs(10, 9, 13) {
            let gr = greedy(&g).unwrap();
            let bf = brute_force(&g).unwrap();
            assert!(gr.peak_bytes >= bf.peak_bytes);
        }
    }

    #[test]
    fn greedy_is_not_optimal() {
        // Counterexample: after `root, x1` the greedy rule prefers y1
        // (footprint 42, frees root) over x2 (footprint 51), but delaying x2
        // forces x2 and y1 to coexist with x1, peaking at 92 instead of the
        // optimal 91 reached by `root, x1, x2, y1, join`.
        let mut g = Graph::new("trap");
        let root = g.add_opaque("root", 1, &[]).unwrap();
        let x1 = g.add_opaque("x1", 2, &[root]).unwrap();
        let x2 = g.add_opaque("x2", 50, &[x1]).unwrap();
        let y1 = g.add_opaque("y1", 40, &[root]).unwrap();
        let join = g.add_opaque("join", 1, &[x2, y1]).unwrap();
        g.mark_output(join);

        let gr = greedy(&g).unwrap();
        let bf = brute_force(&g).unwrap();
        assert_eq!(bf.peak_bytes, 91);
        assert_eq!(gr.peak_bytes, 92);
        assert!(gr.peak_bytes > bf.peak_bytes);
    }

    #[test]
    #[should_panic(expected = "exceeds the cap")]
    fn brute_force_cap_is_enforced() {
        let g = serenity_ir::random_dag::independent_branches(30, 1);
        let _ = brute_force(&g);
    }

    #[test]
    fn brute_force_empty_graph() {
        let g = Graph::new("empty");
        let s = brute_force(&g).unwrap();
        assert!(s.is_empty());
    }
}
