//! The pluggable scheduling API: [`SchedulerBackend`] and the compile
//! control plane ([`CompileOptions`], [`CompileContext`], [`CompileEvent`]).
//!
//! The paper's pipeline (Figure 4) composes interchangeable search
//! strategies — exact DP (§3.1), adaptive soft budgeting (§3.2), and the
//! baselines it compares against. This module makes that composition a
//! first-class, open API: every strategy implements [`SchedulerBackend`],
//! the pipeline and divide-and-conquer drivers accept any backend, and
//! [`crate::registry::BackendRegistry`] exposes them by name (including to
//! the `serenity schedule --scheduler <name>` CLI).
//!
//! The control plane threads three concerns through every backend:
//!
//! * a **wall-clock deadline** relative to the start of the compile,
//! * a **shared cancellation flag** ([`CancelToken`]) checked inside the
//!   DP/budget inner loops, and
//! * a **structured event sink** ([`CompileEvent`]) replacing silent
//!   compilation: rewrites, segment completions, budget probes, and backend
//!   choices are reported as they happen.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//!
//! use serenity_core::backend::{
//!     CompileContext, CompileOptions, DpBackend, SchedulerBackend,
//! };
//! use serenity_core::ScheduleError;
//! use serenity_ir::random_dag::independent_branches;
//!
//! let graph = independent_branches(6, 16);
//!
//! // Unconstrained run.
//! let ctx = CompileContext::unconstrained();
//! let outcome = DpBackend::default().schedule(&graph, &ctx).unwrap();
//! assert_eq!(outcome.schedule.order.len(), graph.len());
//!
//! // A zero deadline aborts with a distinct error instead of a bogus
//! // schedule.
//! let ctx = CompileContext::new(CompileOptions::new().deadline(Duration::ZERO));
//! let err = DpBackend::default().schedule(&graph, &ctx).unwrap_err();
//! assert!(matches!(err, ScheduleError::DeadlineExceeded { .. }));
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serenity_ir::fxhash::FxHasher;
use serenity_ir::{Graph, NodeId};

use crate::baseline;
use crate::beam::BeamScheduler;
use crate::budget::{AdaptiveSoftBudget, BudgetConfig, RoundFlag};
use crate::cache::CompileCache;
use crate::capacity::CapacityTarget;
use crate::dp::{DpConfig, DpScheduler};
use crate::fault::FaultPlan;
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Canonical backend-identity hash for
/// [`SchedulerBackend::config_fingerprint`] implementations: folds the
/// backend name and its result-affecting configuration words into one
/// stable 64-bit key. Encode an `Option<T>` knob as two words
/// (`0`/`1` discriminant, then the value or `0`) so `None` can never alias
/// a legitimate value.
pub fn config_fingerprint_of(name: &str, parts: &[u64]) -> u64 {
    let mut hasher = FxHasher::default();
    name.hash(&mut hasher);
    for &part in parts {
        hasher.write_u64(part);
    }
    hasher.finish()
}

/// Encodes one optional configuration knob for [`config_fingerprint_of`].
fn opt_part(value: Option<u64>) -> [u64; 2] {
    match value {
        Some(v) => [1, v],
        None => [0, 0],
    }
}

/// Shared cancellation flag, cloneable across threads.
///
/// Cancelling is sticky: once [`CancelToken::cancel`] is called every clone
/// observes it and in-flight schedules abort with
/// [`ScheduleError::Cancelled`] at their next check point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every run holding a clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of low bits of an [`IncumbentBound`]'s packed word holding the
/// setter priority; the remaining high bits hold the peak.
const PRIORITY_BITS: u32 = 16;
const PRIORITY_MASK: u64 = (1 << PRIORITY_BITS) - 1;
/// Peaks at or above 2^48 bytes (256 TiB of activations) cannot be packed;
/// they are simply never published — the bound stays weaker, which is
/// always sound.
const MAX_PACKABLE_PEAK: u64 = (u64::MAX >> PRIORITY_BITS) - 1;

/// A shared branch-and-bound incumbent: the best *completed* schedule peak
/// any racer has achieved so far, plus the member priority of whoever set
/// it, packed into one lock-free word.
///
/// The packing is `(peak << 16) | setter_priority`, updated by atomic
/// fetch-min, so a smaller packed value is exactly "a better incumbent":
/// lower peak first, earlier (smaller-priority) member on peak ties. A
/// searcher running at priority `p` may discard a state with running peak
/// `peak` precisely when `(peak << 16) | p` exceeds the packed word — i.e.
/// when every completion through that state loses to the incumbent under
/// the portfolio's own min-peak, earliest-member-wins-ties selection rule.
/// Running peaks are monotone along a schedule path, so this pruning can
/// never remove a schedule that would have won, which is what keeps raced
/// portfolios bit-identical to serial ones (ARCHITECTURE.md invariant #2).
///
/// Two reserved setter priorities bracket the member range `1..`:
///
/// * [`IncumbentBound::SEED_PRIORITY`] (0) — a caller-provided incumbent
///   that *wins ties*: searchers give up even on equalling it (used by the
///   pipeline's final re-schedule, where matching the original peak is not
///   an improvement).
/// * [`IncumbentBound::WEAK_PRIORITY`] (`u16::MAX`) — a seed that *loses
///   ties*: searchers prune only strictly worse states (used by the
///   rewrite scorer, where a candidate equalling the current peak is still
///   an acceptable plateau step).
pub struct IncumbentBound {
    packed: AtomicU64,
    /// Second bound axis for capacity-constrained compiles: the best total
    /// off-chip traffic any racer's *completed and assessed* schedule has
    /// achieved, packed exactly like `packed`. See
    /// [`IncumbentBound::publish_capacity`] for the coupling rule between
    /// the two words.
    traffic_packed: AtomicU64,
}

impl fmt::Debug for IncumbentBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncumbentBound")
            .field("peak", &self.peak())
            .field("setter_priority", &self.setter_priority())
            .field("traffic", &self.traffic())
            .finish()
    }
}

impl Default for IncumbentBound {
    fn default() -> Self {
        IncumbentBound {
            packed: AtomicU64::new(u64::MAX),
            traffic_packed: AtomicU64::new(u64::MAX),
        }
    }
}

impl IncumbentBound {
    /// Setter priority of a tie-winning caller seed (see the type docs).
    pub const SEED_PRIORITY: u16 = 0;
    /// Setter priority of a tie-losing caller seed (see the type docs).
    pub const WEAK_PRIORITY: u16 = u16::MAX;

    /// An empty bound: nothing published, nothing prunes.
    pub fn new() -> Self {
        IncumbentBound::default()
    }

    /// A bound pre-seeded with one incumbent peak.
    pub fn seeded(peak_bytes: u64, priority: u16) -> Self {
        let bound = IncumbentBound::new();
        bound.publish(peak_bytes, priority);
        bound
    }

    fn pack(peak_bytes: u64, priority: u16) -> u64 {
        (peak_bytes << PRIORITY_BITS) | u64::from(priority)
    }

    /// Publishes a *completed* schedule's peak. Only ever tightens: the
    /// stored incumbent is the minimum over all publishes (peak first,
    /// setter priority as tie-break). Peaks too large to pack are ignored.
    pub fn publish(&self, peak_bytes: u64, priority: u16) {
        if peak_bytes <= MAX_PACKABLE_PEAK {
            self.packed.fetch_min(Self::pack(peak_bytes, priority), Ordering::Relaxed);
        }
    }

    /// The largest running peak that can still *win* against the current
    /// incumbent for a searcher at `priority` (`u64::MAX` when nothing was
    /// published). States strictly above it may be discarded: every
    /// completion through them loses the race. The bound only tightens, so
    /// a stale value is merely conservative — engines may cache this per
    /// search step.
    pub fn max_viable_peak(&self, priority: u16) -> u64 {
        Self::max_viable(self.packed.load(Ordering::Relaxed), priority)
    }

    fn max_viable(packed: u64, priority: u16) -> u64 {
        if packed == u64::MAX {
            return u64::MAX;
        }
        let value = packed >> PRIORITY_BITS;
        let setter = (packed & PRIORITY_MASK) as u16;
        // An earlier setter wins ties, so equalling it is already a loss; a
        // later (or tie-losing) setter still loses to an equal value.
        if setter < priority {
            value.saturating_sub(1)
        } else {
            value
        }
    }

    /// Publishes a completed schedule assessed under a
    /// [`CapacityTarget`]: `traffic` is its total off-chip traffic at the
    /// target capacity. The traffic word tightens by fetch-min exactly like
    /// the peak word. The peak word is tightened **only when the schedule
    /// fits** (`traffic == 0`): under the `(fits, traffic, peak)` objective
    /// a spilling incumbent's peak must not prune, because a higher-peak
    /// order can still win on traffic — whereas any rival to a *fitting*
    /// incumbent must itself fit and beat it on peak, so the classic peak
    /// cutoff stays sound (see [`crate::capacity`]).
    pub fn publish_capacity(&self, traffic: u64, peak_bytes: u64, priority: u16) {
        if traffic <= MAX_PACKABLE_PEAK {
            self.traffic_packed.fetch_min(Self::pack(traffic, priority), Ordering::Relaxed);
        }
        if traffic == 0 {
            self.publish(peak_bytes, priority);
        }
    }

    /// The largest total traffic that can still *win* against the current
    /// capacity incumbent for a member at `priority` (`u64::MAX` when no
    /// capacity publish happened). The same tie rule as
    /// [`IncumbentBound::max_viable_peak`] applies.
    pub fn max_viable_traffic(&self, priority: u16) -> u64 {
        Self::max_viable(self.traffic_packed.load(Ordering::Relaxed), priority)
    }

    /// The incumbent total traffic, if any capacity publish happened.
    pub fn traffic(&self) -> Option<u64> {
        let packed = self.traffic_packed.load(Ordering::Relaxed);
        (packed != u64::MAX).then_some(packed >> PRIORITY_BITS)
    }

    /// The incumbent peak in bytes, if any publish happened.
    pub fn peak(&self) -> Option<u64> {
        let packed = self.packed.load(Ordering::Relaxed);
        (packed != u64::MAX).then_some(packed >> PRIORITY_BITS)
    }

    /// The member priority of whoever set the incumbent, if any.
    pub fn setter_priority(&self) -> Option<u16> {
        let packed = self.packed.load(Ordering::Relaxed);
        (packed != u64::MAX).then_some((packed & PRIORITY_MASK) as u16)
    }
}

/// One run's view of a shared [`IncumbentBound`]: the bound plus the run's
/// own member priority, carried on [`CompileOptions::bound`]. Cloning
/// shares the underlying bound.
#[derive(Clone)]
pub struct BoundHandle {
    bound: Arc<IncumbentBound>,
    priority: u16,
}

impl fmt::Debug for BoundHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundHandle")
            .field("bound", &self.bound)
            .field("priority", &self.priority)
            .finish()
    }
}

impl BoundHandle {
    /// Default reading priority of a non-portfolio run: later than a
    /// tie-winning seed, earlier than a tie-losing one.
    pub const DEFAULT_PRIORITY: u16 = 1;

    /// Wraps a shared bound for a run at `priority`.
    pub fn new(bound: Arc<IncumbentBound>, priority: u16) -> Self {
        BoundHandle { bound, priority }
    }

    /// A fresh bound seeded with a tie-*winning* incumbent: the run gives
    /// up even on equalling `peak_bytes` (the pipeline's "keep the
    /// original unless strictly better" rule).
    pub fn seeded_incumbent(peak_bytes: u64) -> Self {
        BoundHandle::new(
            Arc::new(IncumbentBound::seeded(peak_bytes, IncumbentBound::SEED_PRIORITY)),
            Self::DEFAULT_PRIORITY,
        )
    }

    /// A fresh bound seeded with a tie-*losing* incumbent: the run prunes
    /// only strictly worse states (the rewrite scorer's "a plateau tie is
    /// still acceptable" rule).
    pub fn seeded_weak(peak_bytes: u64) -> Self {
        BoundHandle::new(
            Arc::new(IncumbentBound::seeded(peak_bytes, IncumbentBound::WEAK_PRIORITY)),
            Self::DEFAULT_PRIORITY,
        )
    }

    /// The same shared bound viewed at a different member priority.
    pub fn with_priority(&self, priority: u16) -> Self {
        BoundHandle { bound: Arc::clone(&self.bound), priority }
    }

    /// This run's member priority.
    pub fn priority(&self) -> u16 {
        self.priority
    }

    /// The shared bound itself.
    pub fn shared(&self) -> &Arc<IncumbentBound> {
        &self.bound
    }

    /// Publishes a completed peak at this run's priority.
    pub fn publish(&self, peak_bytes: u64) {
        self.bound.publish(peak_bytes, self.priority);
    }

    /// See [`IncumbentBound::max_viable_peak`].
    pub fn max_viable_peak(&self) -> u64 {
        self.bound.max_viable_peak(self.priority)
    }

    /// Publishes a capacity-assessed completion at this run's priority; see
    /// [`IncumbentBound::publish_capacity`].
    pub fn publish_capacity(&self, traffic: u64, peak_bytes: u64) {
        self.bound.publish_capacity(traffic, peak_bytes, self.priority);
    }

    /// See [`IncumbentBound::max_viable_traffic`].
    pub fn max_viable_traffic(&self) -> u64 {
        self.bound.max_viable_traffic(self.priority)
    }

    /// The incumbent peak to report in
    /// [`ScheduleError::BoundBeaten`](crate::ScheduleError).
    pub fn beaten_by(&self) -> u64 {
        self.bound.peak().unwrap_or(u64::MAX)
    }
}

/// Structured events emitted during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileEvent {
    /// An identity graph rewrite was applied.
    RewriteApplied {
        /// Rule name.
        rule: &'static str,
        /// Name of the rewritten concat node.
        concat: String,
        /// Name of the rewritten consumer node.
        consumer: String,
        /// Number of branches partitioned.
        branches: usize,
    },
    /// A divide-and-conquer segment finished scheduling.
    SegmentScheduled {
        /// Segment index in series order.
        index: usize,
        /// Parent-graph nodes in the segment.
        nodes: usize,
        /// Peak footprint of the segment schedule in bytes.
        peak_bytes: u64,
    },
    /// The pipeline started scheduling one candidate graph (the original,
    /// or the rewritten one under `RewriteMode::{IfBeneficial, Always}`).
    ///
    /// Delimits the event stream: every `SegmentScheduled`/`BudgetProbe`
    /// that follows belongs to this candidate, until the next
    /// `CandidateStarted` or the closing `CandidateKept`.
    CandidateStarted {
        /// Whether this candidate is the rewritten graph.
        rewritten: bool,
        /// Node count of the candidate graph.
        nodes: usize,
    },
    /// The pipeline decided which candidate's schedule to keep.
    CandidateKept {
        /// Whether the kept schedule belongs to the rewritten graph.
        rewritten: bool,
        /// Peak footprint of the kept schedule in bytes.
        peak_bytes: u64,
    },
    /// A divide-and-conquer segment schedule was replayed from the
    /// [`ScheduleMemo`](crate::memo::ScheduleMemo) instead of re-searched.
    SegmentMemoHit {
        /// Segment index in series order.
        index: usize,
        /// Parent-graph nodes in the segment.
        nodes: usize,
        /// Peak footprint of the replayed segment schedule in bytes.
        peak_bytes: u64,
    },
    /// The rewrite search scored one candidate graph (the current graph with
    /// one rewrite site applied) by scheduling it with the scoring backend.
    RewriteCandidateScored {
        /// Rule that produced the candidate.
        rule: &'static str,
        /// Name of the candidate's concat node (pre-rewrite).
        concat: String,
        /// Name of the candidate's consumer node (pre-rewrite).
        consumer: String,
        /// Number of branches the site would partition.
        branches: usize,
        /// Scored peak footprint of the candidate, in bytes.
        peak_bytes: u64,
        /// Scored peak of the current (unrewritten-this-iteration) graph.
        current_peak_bytes: u64,
    },
    /// A scored candidate won its iteration: it did not worsen the scored
    /// peak (plateau steps included) and became the current graph of the
    /// rewrite search.
    RewriteCandidateKept {
        /// Rule that produced the candidate.
        rule: &'static str,
        /// Name of the rewritten concat node.
        concat: String,
        /// Name of the rewritten consumer node.
        consumer: String,
        /// Search iteration (0-based) that accepted the candidate.
        iteration: usize,
        /// Scored peak footprint after accepting, in bytes.
        peak_bytes: u64,
    },
    /// A scored candidate was discarded: it worsened the current peak, or a
    /// better candidate won the iteration.
    RewriteCandidateRejected {
        /// Rule that produced the candidate.
        rule: &'static str,
        /// Name of the candidate's concat node.
        concat: String,
        /// Name of the candidate's consumer node.
        consumer: String,
        /// Scored peak footprint of the candidate, in bytes.
        peak_bytes: u64,
    },
    /// The iterative rewrite↔schedule search finished.
    RewriteSearchFinished {
        /// Iterations that accepted a candidate.
        iterations: usize,
        /// Total candidates scored across all iterations.
        candidates: usize,
        /// Why the loop stopped.
        stop: crate::rewrite::RewriteStop,
        /// Schedule-memo hits across all scoring runs.
        memo_hits: u64,
        /// Schedule-memo misses across all scoring runs.
        memo_misses: u64,
        /// Scored peak of the input graph, in bytes.
        initial_peak_bytes: u64,
        /// Scored peak of the final graph, in bytes.
        final_peak_bytes: u64,
    },
    /// One budget-pruned DP probe of the adaptive meta-search completed.
    BudgetProbe {
        /// The soft budget τ used, in bytes.
        budget: u64,
        /// How the probe ended.
        flag: RoundFlag,
    },
    /// A portfolio member started running.
    BackendStarted {
        /// Backend name.
        name: String,
    },
    /// A backend's schedule was selected as the winner.
    BackendChosen {
        /// Backend name.
        name: String,
        /// Peak footprint of the chosen schedule in bytes.
        peak_bytes: u64,
    },
    /// A portfolio member was cut off — never started, or its in-flight
    /// raced run discarded — because an exact member had already completed
    /// with a provably optimal peak that no later member could beat.
    BackendSkipped {
        /// Skipped backend name.
        name: String,
    },
    /// A divide-and-conquer segment schedule was replayed from the
    /// process-wide [`CompileCache`] — a
    /// cross-request hit (contrast [`CompileEvent::SegmentMemoHit`], the
    /// in-request memo).
    SegmentCacheHit {
        /// Segment index in series order.
        index: usize,
        /// Parent-graph nodes in the segment.
        nodes: usize,
        /// Peak footprint of the replayed segment schedule in bytes.
        peak_bytes: u64,
    },
    /// End-of-compile snapshot of the process-wide
    /// [`CompileCache`] (emitted once per
    /// [`Serenity::compile`](crate::pipeline::Serenity::compile) when a
    /// cache is installed). Counters are process-wide totals, not
    /// per-request deltas — per-request hit/miss counts live in
    /// [`ScheduleStats::cache_hits`]/[`ScheduleStats::cache_misses`].
    CacheReport {
        /// Lookups served from the cache since process start.
        hits: u64,
        /// Lookups that missed since process start.
        misses: u64,
        /// Entries evicted under the byte budget since process start.
        evictions: u64,
        /// Entries currently resident.
        entries: usize,
        /// Approximate bytes currently retained.
        entry_bytes: u64,
    },
}

/// Receiver for [`CompileEvent`]s.
pub type EventSink = Arc<dyn Fn(&CompileEvent) + Send + Sync>;

/// Caller-facing knobs of a compile/schedule run.
#[derive(Clone, Default)]
pub struct CompileOptions {
    /// Wall-clock budget for the whole run, measured from
    /// [`CompileContext::new`]. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Shared cancellation flag checked inside scheduler inner loops.
    pub cancel: CancelToken,
    /// Structured event receiver (`None` drops events).
    pub events: Option<EventSink>,
    /// Process-wide compile cache shared across requests (`None` disables
    /// cross-request reuse). Consulted by the compile *drivers* —
    /// [`Serenity`](crate::pipeline::Serenity) and
    /// [`DivideAndConquer`](crate::divide::DivideAndConquer) — not by raw
    /// backends, so `backend.schedule(graph, &ctx)` alone never caches.
    /// For deterministic backends, cached results are bit-identical to
    /// uncached ones; see the [`crate::cache`] module docs for the caveat
    /// on timing-adaptive configurations.
    pub cache: Option<Arc<CompileCache>>,
    /// Armed fault-injection plan (`None` in production). Consulted by
    /// the compile pipeline at its named injection points; see
    /// [`crate::fault`].
    pub fault: Option<Arc<FaultPlan>>,
    /// Shared incumbent-peak bound for branch-and-bound cutoffs (`None`
    /// disables pruning). Installed by the racing portfolio, the rewrite
    /// scorer, and the pipeline's seeded re-schedule; consulted inside the
    /// DP/adaptive transition loops and the beam's per-step cutoff. Like
    /// `threads`, this is a wall-clock-only knob by construction —
    /// completed runs are bit-identical with or without it — so it is
    /// excluded from every `config_fingerprint`.
    pub bound: Option<BoundHandle>,
    /// Hard cap, in bytes, on a search's *own* live memory (DP memo
    /// arenas, beam frontiers) — not the schedule's activation footprint.
    /// Backends compare it against the same accounting that feeds
    /// [`ScheduleStats::peak_memo_bytes`] and fail fast with
    /// [`ScheduleError::MemoryBudgetExceeded`] instead of growing without
    /// bound. Excluded from `config_fingerprint`s: a budgeted run either
    /// errors or returns a result bit-identical to the unbudgeted one, so
    /// successful compiles share cache entries.
    pub memory_budget: Option<u64>,
    /// On-chip capacity constraint (`None` compiles as today). With
    /// [`CapacityObjective::Fit`](crate::capacity::CapacityObjective) the
    /// search is unchanged and the result is annotated with a verified
    /// [`CapacityReport`](crate::capacity::CapacityReport); with
    /// [`CapacityObjective::MinTraffic`](crate::capacity::CapacityObjective)
    /// the pipeline, rewrite loop, and portfolio rank candidates
    /// lexicographically by `(fits, traffic, peak)`. Unlike the wall-clock
    /// knobs above this is result-affecting, so compile drivers salt their
    /// cache keys with [`CapacityTarget::cache_salt`].
    pub capacity: Option<CapacityTarget>,
}

impl fmt::Debug for CompileOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileOptions")
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel)
            .field("events", &self.events.as_ref().map(|_| "<sink>"))
            .field("cache", &self.cache)
            .field("fault", &self.fault)
            .field("bound", &self.bound)
            .field("memory_budget", &self.memory_budget)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl CompileOptions {
    /// Creates default options: no deadline, fresh token, no sink.
    pub fn new() -> Self {
        CompileOptions::default()
    }

    /// Sets the wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Uses `token` as the cancellation flag (share a clone with the code
    /// that may cancel).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Installs an event sink.
    pub fn on_event(mut self, sink: impl Fn(&CompileEvent) + Send + Sync + 'static) -> Self {
        self.events = Some(Arc::new(sink));
        self
    }

    /// Shares a process-wide compile cache with this run (clone the same
    /// `Arc` into every request that should reuse schedules).
    pub fn compile_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Arms a fault-injection plan for this run (test-only surface; see
    /// [`crate::fault`]).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Installs a shared incumbent-peak bound for branch-and-bound cutoffs.
    pub fn incumbent_bound(mut self, bound: BoundHandle) -> Self {
        self.bound = Some(bound);
        self
    }

    /// Caps the search's own live memory (memo arenas, beam frontiers) at
    /// `bytes`; crossing it fails the run with
    /// [`ScheduleError::MemoryBudgetExceeded`].
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Constrains the compile to an on-chip capacity target (see the
    /// [`capacity`](CompileOptions::capacity) field).
    pub fn capacity_target(mut self, target: CapacityTarget) -> Self {
        self.capacity = Some(target);
        self
    }
}

/// Per-run compile state handed to every backend: options plus the run's
/// start instant, from which the deadline is measured.
#[derive(Debug, Clone)]
pub struct CompileContext {
    options: CompileOptions,
    started: Instant,
}

impl CompileContext {
    /// Starts a run governed by `options`; the deadline clock starts now.
    pub fn new(options: CompileOptions) -> Self {
        CompileContext { options, started: Instant::now() }
    }

    /// A context with no deadline, no cancellation, and no event sink.
    pub fn unconstrained() -> Self {
        CompileContext::new(CompileOptions::default())
    }

    /// The options governing this run.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Derives a context that shares this run's deadline clock and
    /// cancellation token but replaces the event sink (`None` silences
    /// events). The parallel rewrite search hands each scoring worker a
    /// buffering sink so events can be replayed deterministically in
    /// candidate order afterwards.
    pub fn with_event_sink(&self, events: Option<EventSink>) -> CompileContext {
        CompileContext {
            options: CompileOptions {
                deadline: self.options.deadline,
                cancel: self.options.cancel.clone(),
                events,
                cache: self.options.cache.clone(),
                fault: self.options.fault.clone(),
                bound: self.options.bound.clone(),
                memory_budget: self.options.memory_budget,
                capacity: self.options.capacity,
            },
            started: self.started,
        }
    }

    /// Derives a context identical to this one except for its incumbent
    /// bound (`None` removes any installed bound). The deadline clock,
    /// cancellation token, event sink, cache, and fault plan are shared.
    pub fn with_bound(&self, bound: Option<BoundHandle>) -> CompileContext {
        let mut options = self.options.clone();
        options.bound = bound;
        CompileContext { options, started: self.started }
    }

    /// Derives a context whose remaining wall-clock budget is capped at
    /// `slice` from now (never extending an existing deadline). The serial
    /// portfolio uses this to split the remaining deadline fairly across
    /// its unstarted members.
    pub fn with_deadline_slice(&self, slice: Duration) -> CompileContext {
        let sliced = self.elapsed().saturating_add(slice);
        let mut options = self.options.clone();
        options.deadline = Some(match options.deadline {
            Some(existing) => existing.min(sliced),
            None => sliced,
        });
        CompileContext { options, started: self.started }
    }

    /// The installed incumbent bound, if any.
    pub fn bound(&self) -> Option<&BoundHandle> {
        self.options.bound.as_ref()
    }

    /// The search-memory budget in bytes, if one was set.
    pub fn memory_budget(&self) -> Option<u64> {
        self.options.memory_budget
    }

    /// The on-chip capacity target, if one was set.
    pub fn capacity(&self) -> Option<CapacityTarget> {
        self.options.capacity
    }

    /// Fails the run when `used` live search-memory bytes cross the
    /// configured budget (a no-op when no budget is set). Engines call
    /// this at the same accounting points that feed
    /// [`ScheduleStats::peak_memo_bytes`], so enforcement and reporting
    /// can never drift apart.
    pub fn check_memory_budget(&self, used: u64) -> Result<(), ScheduleError> {
        if let Some(budget) = self.options.memory_budget {
            if used > budget {
                return Err(ScheduleError::MemoryBudgetExceeded { used, budget });
            }
        }
        Ok(())
    }

    /// Whether an event sink is installed (when absent, callers can skip
    /// building event payloads entirely).
    pub fn has_sink(&self) -> bool {
        self.options.events.is_some()
    }

    /// Wall-clock time since the run started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Emits an event to the configured sink (drops it when none is set).
    pub fn emit(&self, event: CompileEvent) {
        if let Some(sink) = &self.options.events {
            sink(&event);
        }
    }

    /// Checks cancellation and the deadline.
    ///
    /// Called from scheduler inner loops every few hundred transitions, so
    /// aborts take effect promptly without per-transition overhead.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::Cancelled`] when the token was triggered.
    /// * [`ScheduleError::DeadlineExceeded`] when the wall-clock budget ran
    ///   out.
    pub fn check(&self) -> Result<(), ScheduleError> {
        if self.options.cancel.is_cancelled() {
            return Err(ScheduleError::Cancelled);
        }
        if let Some(deadline) = self.options.deadline {
            let elapsed = self.started.elapsed();
            if elapsed >= deadline {
                return Err(ScheduleError::DeadlineExceeded { elapsed });
            }
        }
        Ok(())
    }
}

/// What a backend returns: a valid schedule plus its search effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendOutcome {
    /// The schedule (a topological order with its exact peak).
    pub schedule: Schedule,
    /// Search-effort counters of the run.
    pub stats: ScheduleStats,
}

/// A scheduling strategy, pluggable into the pipeline, divide-and-conquer,
/// the portfolio, and the CLI.
///
/// Implementations must return either a *valid* schedule — a topological
/// order of `graph` whose `peak_bytes` equals
/// [`serenity_ir::mem::peak_bytes`] on that order — or an error; never a
/// best-effort invalid order. They should poll [`CompileContext::check`]
/// often enough that cancellation and deadlines take effect promptly.
pub trait SchedulerBackend: Send + Sync {
    /// Stable, registry-facing name (lowercase, dash-separated).
    fn name(&self) -> &str;

    /// Canonical fingerprint of this backend's *identity*: its name plus
    /// every configuration knob that can change the schedules it returns.
    /// The process-wide [`CompileCache`] keys
    /// entries by this value, so two backends (or two configurations of
    /// one backend) that could produce different schedules for the same
    /// graph **must** fingerprint differently — `dp` can never replay
    /// `beam`, and a budgeted DP can never replay an unbudgeted one.
    ///
    /// Pure wall-clock knobs whose results are bit-identical by contract
    /// (e.g. worker-thread counts) should be *excluded*, so configurations
    /// differing only in parallelism share cache entries. The default
    /// implementation hashes the name alone via [`config_fingerprint_of`];
    /// backends with result-affecting knobs must override it.
    fn config_fingerprint(&self) -> u64 {
        config_fingerprint_of(self.name(), &[])
    }

    /// Schedules `graph` under the run context `ctx`.
    ///
    /// # Errors
    ///
    /// Backend-specific ([`ScheduleError::NoSolution`],
    /// [`ScheduleError::Timeout`], …) plus the context aborts
    /// [`ScheduleError::Cancelled`] and [`ScheduleError::DeadlineExceeded`].
    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError>;

    /// Schedules `graph` with `prefix` pinned to the front, in order.
    ///
    /// Divide-and-conquer pins a segment's boundary placeholder (a
    /// predecessor-free input node) so the cut tensor's bytes are accounted
    /// from step 0. The default implementation schedules normally and hoists
    /// the prefix to the front — sound because pinned nodes have no
    /// predecessors — re-deriving the peak; backends with native prefix
    /// support (DP, adaptive budgeting) override it.
    ///
    /// # Errors
    ///
    /// As [`SchedulerBackend::schedule`]; additionally a graph error when
    /// `prefix` is not schedulable up front.
    fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        let outcome = self.schedule(graph, ctx)?;
        if outcome.schedule.order.starts_with(prefix) {
            return Ok(outcome);
        }
        let mut order = prefix.to_vec();
        order.extend(outcome.schedule.order.iter().filter(|id| !prefix.contains(id)));
        let schedule = Schedule::from_order(graph, order)?;
        Ok(BackendOutcome { schedule, stats: outcome.stats })
    }
}

impl<B: SchedulerBackend + ?Sized> SchedulerBackend for Arc<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn config_fingerprint(&self) -> u64 {
        (**self).config_fingerprint()
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        (**self).schedule(graph, ctx)
    }

    fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        (**self).schedule_with_prefix(graph, prefix, ctx)
    }
}

/// The exact dynamic-programming scheduler (§3.1) as a backend.
#[derive(Debug, Clone, Default)]
pub struct DpBackend {
    config: DpConfig,
}

impl DpBackend {
    /// A DP backend with the given configuration.
    pub fn with_config(config: DpConfig) -> Self {
        DpBackend { config }
    }
}

impl SchedulerBackend for DpBackend {
    fn name(&self) -> &str {
        "dp"
    }

    /// Everything result-affecting: budget τ, per-step timeout, and the
    /// state cap (both abort behaviors are observable). `threads` is
    /// excluded — parallel expansion is bit-identical to serial by
    /// construction (PR 2), so thread counts share cache entries.
    fn config_fingerprint(&self) -> u64 {
        let mut parts = Vec::with_capacity(6);
        parts.extend(opt_part(self.config.budget));
        parts.extend(opt_part(self.config.step_timeout.map(|d| d.as_nanos() as u64)));
        parts.extend(opt_part(self.config.max_states.map(|n| n as u64)));
        config_fingerprint_of(self.name(), &parts)
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_with_prefix(graph, &[], ctx)
    }

    fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        let solution = DpScheduler::with_config(self.config.clone())
            .schedule_with_prefix_ctx(graph, prefix, ctx)?;
        Ok(BackendOutcome { schedule: solution.schedule, stats: solution.stats })
    }
}

/// Adaptive soft budgeting (§3.2, Algorithm 2) as a backend.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveBackend {
    config: BudgetConfig,
}

impl AdaptiveBackend {
    /// An adaptive-budget backend with the given configuration.
    pub fn with_config(config: BudgetConfig) -> Self {
        AdaptiveBackend { config }
    }
}

impl SchedulerBackend for AdaptiveBackend {
    fn name(&self) -> &str {
        "adaptive"
    }

    /// Step timeout, round cap, and state cap all shape which budget the
    /// meta-search settles on; `threads` is excluded (wall-clock only).
    fn config_fingerprint(&self) -> u64 {
        let mut parts =
            vec![self.config.step_timeout.as_nanos() as u64, self.config.max_rounds as u64];
        parts.extend(opt_part(self.config.max_states.map(|n| n as u64)));
        config_fingerprint_of(self.name(), &parts)
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_with_prefix(graph, &[], ctx)
    }

    fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        let outcome = AdaptiveSoftBudget::with_config(self.config.clone())
            .search_with_prefix_ctx(graph, prefix, ctx)?;
        Ok(BackendOutcome { schedule: outcome.schedule, stats: outcome.total_stats })
    }
}

/// Bounded-width beam search as a backend.
#[derive(Debug, Clone)]
pub struct BeamBackend {
    width: usize,
}

impl BeamBackend {
    /// A beam backend keeping `width` states per step.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "beam width must be at least 1");
        BeamBackend { width }
    }
}

impl Default for BeamBackend {
    /// Width 64: comfortably past the quality knee of the beam ablation
    /// while staying polynomial.
    fn default() -> Self {
        BeamBackend::new(64)
    }
}

impl SchedulerBackend for BeamBackend {
    fn name(&self) -> &str {
        "beam"
    }

    /// The beam width bounds which states survive each step, so different
    /// widths can return different schedules and must key distinctly.
    fn config_fingerprint(&self) -> u64 {
        config_fingerprint_of(self.name(), &[self.width as u64])
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        let solution = BeamScheduler::new(self.width).schedule_ctx(graph, ctx)?;
        Ok(BackendOutcome { schedule: solution.schedule, stats: solution.stats })
    }
}

/// Wraps one of the order-producing baseline schedulers as a backend.
macro_rules! baseline_backend {
    ($(#[$doc:meta])* $backend:ident, $name:literal, $f:path) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $backend;

        impl SchedulerBackend for $backend {
            fn name(&self) -> &str {
                $name
            }

            fn schedule(
                &self,
                graph: &Graph,
                ctx: &CompileContext,
            ) -> Result<BackendOutcome, ScheduleError> {
                ctx.check()?;
                let started = Instant::now();
                let schedule = $f(graph)?;
                let stats = ScheduleStats {
                    steps: schedule.order.len(),
                    duration: started.elapsed(),
                    ..ScheduleStats::default()
                };
                Ok(BackendOutcome { schedule, stats })
            }
        }
    };
}

baseline_backend! {
    /// Kahn's-algorithm order (the TensorFlow Lite baseline) as a backend.
    KahnBackend, "kahn", baseline::kahn
}

baseline_backend! {
    /// Depth-first order as a backend.
    DfsBackend, "dfs", baseline::dfs
}

baseline_backend! {
    /// The greedy memory-aware one-step-lookahead heuristic as a backend.
    GreedyBackend, "greedy", baseline::greedy
}

/// Exhaustive branch-and-bound search as a backend.
///
/// Unlike [`baseline::brute_force`], graphs beyond the node cap return
/// [`ScheduleError::TooLarge`] instead of panicking, so the backend is safe
/// to include in registries and portfolios.
#[derive(Debug, Clone, Copy)]
pub struct BruteForceBackend {
    max_nodes: usize,
}

impl BruteForceBackend {
    /// A brute-force backend refusing graphs above `max_nodes` nodes.
    pub fn new(max_nodes: usize) -> Self {
        BruteForceBackend { max_nodes }
    }
}

impl Default for BruteForceBackend {
    fn default() -> Self {
        BruteForceBackend::new(20)
    }
}

impl SchedulerBackend for BruteForceBackend {
    fn name(&self) -> &str {
        "brute-force"
    }

    /// The node cap decides which graphs error out versus get scheduled.
    fn config_fingerprint(&self) -> u64 {
        config_fingerprint_of(self.name(), &[self.max_nodes as u64])
    }

    fn schedule(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<BackendOutcome, ScheduleError> {
        ctx.check()?;
        if graph.len() > self.max_nodes {
            return Err(ScheduleError::TooLarge { nodes: graph.len(), limit: self.max_nodes });
        }
        let started = Instant::now();
        let schedule = baseline::brute_force_capped_ctx(graph, self.max_nodes, ctx)?;
        let stats = ScheduleStats {
            steps: schedule.order.len(),
            duration: started.elapsed(),
            ..ScheduleStats::default()
        };
        Ok(BackendOutcome { schedule, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::random_dag::independent_branches;
    use serenity_ir::topo;

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_fails_before_work() {
        let graph = independent_branches(4, 8);
        let ctx = CompileContext::new(CompileOptions::new().deadline(Duration::ZERO));
        for backend in [
            Box::new(DpBackend::default()) as Box<dyn SchedulerBackend>,
            Box::new(AdaptiveBackend::default()),
            Box::new(KahnBackend),
            Box::new(BruteForceBackend::default()),
        ] {
            let err = backend.schedule(&graph, &ctx).unwrap_err();
            assert!(
                matches!(err, ScheduleError::DeadlineExceeded { .. }),
                "{} returned {err:?}",
                backend.name()
            );
        }
    }

    #[test]
    fn cancellation_aborts() {
        let graph = independent_branches(4, 8);
        let token = CancelToken::new();
        token.cancel();
        let ctx = CompileContext::new(CompileOptions::new().cancel_token(token));
        let err = DpBackend::default().schedule(&graph, &ctx).unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
    }

    #[test]
    fn default_prefix_hoisting_preserves_validity() {
        let mut graph = Graph::new("g");
        let a = graph.add_opaque("a", 4, &[]).unwrap();
        let b = graph.add_opaque("b", 2, &[]).unwrap();
        let c = graph.add_opaque("c", 1, &[a, b]).unwrap();
        graph.mark_output(c);
        let ctx = CompileContext::unconstrained();
        // Greedy has no native prefix support; the default hoist applies.
        let outcome = GreedyBackend.schedule_with_prefix(&graph, &[b], &ctx).unwrap();
        assert_eq!(outcome.schedule.order.first(), Some(&b));
        assert!(topo::is_order(&graph, &outcome.schedule.order));
    }

    #[test]
    fn brute_force_backend_rejects_large_graphs() {
        let graph = independent_branches(30, 1);
        let ctx = CompileContext::unconstrained();
        let err = BruteForceBackend::default().schedule(&graph, &ctx).unwrap_err();
        assert!(matches!(err, ScheduleError::TooLarge { limit: 20, .. }));
    }

    #[test]
    fn config_fingerprints_separate_backends_and_configs() {
        let backends: Vec<Box<dyn SchedulerBackend>> = vec![
            Box::new(DpBackend::default()),
            Box::new(AdaptiveBackend::default()),
            Box::new(BeamBackend::default()),
            Box::new(KahnBackend),
            Box::new(DfsBackend),
            Box::new(GreedyBackend),
            Box::new(BruteForceBackend::default()),
        ];
        for (i, a) in backends.iter().enumerate() {
            for b in &backends[i + 1..] {
                assert_ne!(
                    a.config_fingerprint(),
                    b.config_fingerprint(),
                    "{} and {} must key distinctly",
                    a.name(),
                    b.name()
                );
            }
        }
        // Result-affecting knobs split the key…
        let dp = DpBackend::default();
        let budgeted =
            DpBackend::with_config(DpConfig { budget: Some(4096), ..DpConfig::default() });
        assert_ne!(dp.config_fingerprint(), budgeted.config_fingerprint());
        assert_ne!(
            BeamBackend::default().config_fingerprint(),
            BeamBackend::new(8).config_fingerprint()
        );
        // …while pure wall-clock knobs (threads) share cache entries.
        let threaded = DpBackend::with_config(DpConfig { threads: 4, ..DpConfig::default() });
        assert_eq!(dp.config_fingerprint(), threaded.config_fingerprint());
        // A `None` budget can never alias a zero budget.
        let zero = DpBackend::with_config(DpConfig { budget: Some(0), ..DpConfig::default() });
        assert_ne!(dp.config_fingerprint(), zero.config_fingerprint());
    }

    #[test]
    fn incumbent_bound_packs_peak_over_priority() {
        let bound = IncumbentBound::new();
        assert_eq!(bound.max_viable_peak(1), u64::MAX, "empty bound prunes nothing");
        assert_eq!(bound.peak(), None);

        // A later member's publish tightens the peak…
        bound.publish(100, 3);
        assert_eq!(bound.peak(), Some(100));
        assert_eq!(bound.setter_priority(), Some(3));
        // …and an equal peak from an *earlier* member takes the tie.
        bound.publish(100, 2);
        assert_eq!(bound.setter_priority(), Some(2));
        // A worse or equal-but-later publish is ignored.
        bound.publish(100, 5);
        bound.publish(101, 1);
        assert_eq!((bound.peak(), bound.setter_priority()), (Some(100), Some(2)));

        // Readers earlier than the setter may still *equal* the incumbent;
        // readers later than the setter must strictly beat it.
        assert_eq!(bound.max_viable_peak(1), 100, "earlier reader wins peak ties");
        assert_eq!(bound.max_viable_peak(2), 100, "the setter itself keeps its own peak");
        assert_eq!(bound.max_viable_peak(3), 99, "later reader loses peak ties");
    }

    #[test]
    fn bound_seed_tie_semantics() {
        // A tie-winning seed: equalling it is already a loss.
        let strict = BoundHandle::seeded_incumbent(4096);
        assert_eq!(strict.max_viable_peak(), 4095);
        assert_eq!(strict.beaten_by(), 4096);
        // A tie-losing seed: only strictly worse states are lost.
        let weak = BoundHandle::seeded_weak(4096);
        assert_eq!(weak.max_viable_peak(), 4096);
        // Member views of one shared bound order by priority.
        let shared = Arc::clone(weak.shared());
        let member2 = BoundHandle::new(Arc::clone(&shared), 2);
        member2.publish(2048);
        assert_eq!(BoundHandle::new(shared, 3).max_viable_peak(), 2047);
        assert_eq!(weak.with_priority(1).max_viable_peak(), 2048);
    }

    #[test]
    fn capacity_publishes_tighten_peak_only_when_fitting() {
        let bound = IncumbentBound::new();
        assert_eq!(bound.max_viable_traffic(1), u64::MAX);
        assert_eq!(bound.traffic(), None);

        // A spilling incumbent tightens only the traffic word: its peak
        // must not prune, because a higher-peak order can still win on
        // traffic.
        bound.publish_capacity(5000, 120, 2);
        assert_eq!(bound.traffic(), Some(5000));
        assert_eq!(bound.peak(), None, "spilling peaks never reach the peak word");
        assert_eq!(bound.max_viable_peak(1), u64::MAX);
        assert_eq!(bound.max_viable_traffic(1), 5000, "earlier reader may equal");
        assert_eq!(bound.max_viable_traffic(3), 4999, "later reader must beat");

        // A fitting (zero-traffic) incumbent tightens both axes: any rival
        // must itself fit, so the classic peak cutoff becomes sound again.
        bound.publish_capacity(0, 100, 3);
        assert_eq!(bound.traffic(), Some(0));
        assert_eq!(bound.peak(), Some(100));
        assert_eq!(bound.max_viable_peak(3), 100);
        assert_eq!(bound.max_viable_peak(4), 99);

        // Handles pass both axes through at their priority.
        let handle = BoundHandle::new(Arc::new(IncumbentBound::new()), 2);
        handle.publish_capacity(7, 64);
        assert_eq!(handle.max_viable_traffic(), 7);
        assert_eq!(handle.with_priority(3).max_viable_traffic(), 6);
    }

    #[test]
    fn oversized_peaks_are_never_published() {
        let bound = IncumbentBound::new();
        bound.publish(u64::MAX / 2, 1);
        assert_eq!(bound.peak(), None, "unpackable peaks leave the bound empty");
        bound.publish(512, 1);
        assert_eq!(bound.peak(), Some(512));
    }

    #[test]
    fn context_bound_and_deadline_slice_derivation() {
        let ctx = CompileContext::unconstrained();
        assert!(ctx.bound().is_none());
        let bounded = ctx.with_bound(Some(BoundHandle::seeded_weak(64)));
        assert_eq!(bounded.bound().unwrap().max_viable_peak(), 64);
        // The bound survives sink swaps (the buffering-replay path).
        assert!(bounded.with_event_sink(None).bound().is_some());
        // A slice caps the deadline; it never extends one.
        let sliced = bounded.with_deadline_slice(Duration::from_secs(3600));
        assert!(sliced.options().deadline.is_some());
        let tight = CompileContext::new(CompileOptions::new().deadline(Duration::from_millis(1)));
        let resliced = tight.with_deadline_slice(Duration::from_secs(3600));
        assert!(resliced.options().deadline.unwrap() <= Duration::from_millis(1));
    }

    #[test]
    fn events_reach_the_sink() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let ctx = CompileContext::new(
            CompileOptions::new().on_event(move |e| sink.lock().unwrap().push(e.clone())),
        );
        ctx.emit(CompileEvent::BackendStarted { name: "dp".into() });
        assert_eq!(seen.lock().unwrap().len(), 1);
    }
}
