//! Capacity-constrained compilation: off-chip traffic as a first-class
//! objective (the paper's Figure 11 regime, §4.2).
//!
//! A [`CapacityTarget`] on
//! [`CompileOptions`](crate::backend::CompileOptions) tells the pipeline the
//! device has `capacity_bytes` of on-chip scratchpad. Every produced
//! schedule is then assessed with the Belady simulator from
//! `serenity-memsim` and annotated with a [`CapacityReport`]; under
//! [`CapacityObjective::MinTraffic`] the rewrite loop, the allocator-input
//! canonicalization, and the portfolio race all rank candidates
//! lexicographically by `(fits, traffic, peak)` instead of peak alone.
//!
//! The ranking leans on one structural fact of the simulator: dead tensors
//! are freed eagerly, so the resident set *is* the live set, and therefore
//! **traffic is zero exactly when the schedule peak fits the capacity**
//! (pinned by `crates/memsim/tests/properties.rs`). Two consequences:
//!
//! * `Fit` needs no ranking change — minimizing peak already maximizes the
//!   chance of fitting — so it only adds the report and its verification.
//! * Peak-based pruning bounds stay sound under `MinTraffic` *only* below a
//!   fitting (zero-traffic) incumbent; a spilling incumbent's peak must not
//!   prune, because a higher-peak order can still pay less traffic. The
//!   [`IncumbentBound`](crate::backend::IncumbentBound) traffic axis
//!   encodes exactly this rule.

use serde::{Deserialize, Serialize};
use serenity_ir::{mem, Graph, NodeId};
use serenity_memsim::{simulate, MemSimError, Policy, TrafficStats};

/// What the compiler should do with the capacity constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CapacityObjective {
    /// Keep the peak-minimizing search as-is; report (and verify) whether
    /// the result fits and what traffic it would induce.
    #[default]
    Fit,
    /// Rank candidate schedules lexicographically by `(fits, traffic, peak)`
    /// so the compiler trades peak for lower off-chip traffic when the graph
    /// cannot fit.
    MinTraffic,
}

impl std::fmt::Display for CapacityObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityObjective::Fit => write!(f, "fit"),
            CapacityObjective::MinTraffic => write!(f, "traffic"),
        }
    }
}

/// The on-chip capacity constraint attached to a compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapacityTarget {
    /// On-chip scratchpad capacity in bytes.
    pub capacity_bytes: u64,
    /// How the constraint steers the search.
    pub objective: CapacityObjective,
}

impl CapacityTarget {
    /// A `Fit`-objective target.
    pub fn fit(capacity_bytes: u64) -> Self {
        CapacityTarget { capacity_bytes, objective: CapacityObjective::Fit }
    }

    /// A `MinTraffic`-objective target.
    pub fn min_traffic(capacity_bytes: u64) -> Self {
        CapacityTarget { capacity_bytes, objective: CapacityObjective::MinTraffic }
    }

    /// Whether this target changes which schedule the search selects (as
    /// opposed to only annotating the result). Cache keys must be salted
    /// exactly when this is true.
    pub fn steers_search(&self) -> bool {
        self.objective == CapacityObjective::MinTraffic
    }

    /// Salt XOR-mixed into schedule-cache fingerprints and single-flight
    /// keys. Zero (a no-op) unless the target steers the search, so
    /// `Fit`-annotated compiles keep sharing cache entries with
    /// unconstrained ones; under `MinTraffic` it is a non-zero splitmix64
    /// of the capacity, so different capacities can never replay each
    /// other's schedules.
    pub fn cache_salt(&self) -> u64 {
        if !self.steers_search() {
            return 0;
        }
        let mut z = self.capacity_bytes.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) | 1
    }
}

/// The certified capacity outcome attached to a
/// [`CompiledSchedule`](crate::pipeline::CompiledSchedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// The capacity the schedule was assessed under.
    pub capacity_bytes: u64,
    /// The objective the compile ran with.
    pub objective: CapacityObjective,
    /// Whether the schedule's peak footprint fits on-chip outright.
    pub fits: bool,
    /// Whether the schedule is executable at all on this device — `false`
    /// when a single working set exceeds the capacity.
    pub feasible: bool,
    /// `peak - capacity` when the schedule spills, zero when it fits.
    pub spill_bytes: u64,
    /// Belady-optimal off-chip traffic, `None` when infeasible.
    pub traffic: Option<TrafficStats>,
}

impl CapacityReport {
    /// Total off-chip bytes moved; `u64::MAX` for infeasible schedules so
    /// they rank strictly worse than any feasible spill.
    pub fn total_traffic(&self) -> u64 {
        self.traffic.map_or(u64::MAX, |t| t.total_traffic())
    }

    /// Lexicographic rank under [`CapacityObjective::MinTraffic`]: fitting
    /// schedules first, then lower traffic, then lower peak. Smaller wins.
    pub fn rank(&self, peak_bytes: u64) -> (u64, u64, u64) {
        (u64::from(!self.fits), self.total_traffic(), peak_bytes)
    }
}

/// Assesses `order` against `target`: peak fit plus Belady traffic.
///
/// # Errors
///
/// Returns [`MemSimError::Graph`] when `order` is not a valid schedule of
/// `graph`; an over-capacity working set is *not* an error — it yields a
/// report with `feasible: false`.
pub fn assess(
    graph: &Graph,
    order: &[NodeId],
    target: CapacityTarget,
) -> Result<CapacityReport, MemSimError> {
    let peak = mem::peak_bytes(graph, order).map_err(MemSimError::Graph)?;
    let (feasible, traffic) = match simulate(graph, order, target.capacity_bytes, Policy::Belady) {
        Ok(stats) => (true, Some(stats)),
        Err(MemSimError::WorkingSetTooLarge { .. }) => (false, None),
        Err(e) => return Err(e),
    };
    let fits = peak <= target.capacity_bytes;
    debug_assert!(
        !feasible || (fits == (traffic.map_or(1, |t| t.total_traffic()) == 0)),
        "fits must coincide with zero traffic on feasible schedules"
    );
    Ok(CapacityReport {
        capacity_bytes: target.capacity_bytes,
        objective: target.objective,
        fits,
        feasible,
        spill_bytes: peak.saturating_sub(target.capacity_bytes),
        traffic,
    })
}

/// [`assess`], with simulator errors surfaced as
/// [`ScheduleError`](crate::ScheduleError) — the mapping used by the
/// drivers (pipeline, portfolio), for whom an order the simulator rejects
/// is a contract violation by the backend that produced it.
pub(crate) fn assess_for_driver(
    graph: &Graph,
    order: &[NodeId],
    target: CapacityTarget,
) -> Result<CapacityReport, crate::ScheduleError> {
    assess(graph, order, target).map_err(|e| match e {
        MemSimError::Graph(g) => crate::ScheduleError::Graph(g),
        other => crate::ScheduleError::Graph(serenity_ir::GraphError::InvalidOrder {
            detail: other.to_string(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::topo;

    fn chain(sizes: &[u64]) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("chain");
        let mut prev: Option<NodeId> = None;
        for (i, &s) in sizes.iter().enumerate() {
            let preds: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(g.add_opaque(format!("n{i}"), s, &preds).unwrap());
        }
        g.mark_output(prev.unwrap());
        let order = topo::kahn(&g);
        (g, order)
    }

    #[test]
    fn fitting_schedule_reports_zero_traffic() {
        let (g, order) = chain(&[64, 64, 64]);
        let peak = mem::peak_bytes(&g, &order).unwrap();
        let report = assess(&g, &order, CapacityTarget::min_traffic(peak)).unwrap();
        assert!(report.fits && report.feasible);
        assert_eq!(report.spill_bytes, 0);
        assert_eq!(report.total_traffic(), 0);
    }

    #[test]
    fn spilling_schedule_reports_traffic_and_spill() {
        let mut g = Graph::new("reuse");
        let a = g.add_opaque("a", 64, &[]).unwrap();
        let b = g.add_opaque("b", 256, &[a]).unwrap();
        let c = g.add_opaque("c", 256, &[b]).unwrap();
        let d = g.add_opaque("d", 64, &[c, a]).unwrap();
        g.mark_output(d);
        let order = topo::kahn(&g);
        let peak = mem::peak_bytes(&g, &order).unwrap();
        let report = assess(&g, &order, CapacityTarget::min_traffic(peak - 1)).unwrap();
        assert!(!report.fits && report.feasible);
        assert_eq!(report.spill_bytes, 1);
        assert!(report.total_traffic() > 0);
    }

    #[test]
    fn infeasible_schedule_ranks_worst() {
        let (g, order) = chain(&[512, 512]);
        let report = assess(&g, &order, CapacityTarget::min_traffic(16)).unwrap();
        assert!(!report.feasible && !report.fits);
        assert_eq!(report.total_traffic(), u64::MAX);
        // A feasible-but-spilling schedule (every working set fits, the
        // peak does not) must still rank strictly better than infeasible.
        let mut g2 = Graph::new("reuse");
        let a = g2.add_opaque("a", 64, &[]).unwrap();
        let b = g2.add_opaque("b", 256, &[a]).unwrap();
        let c = g2.add_opaque("c", 256, &[b]).unwrap();
        let d = g2.add_opaque("d", 64, &[c, a]).unwrap();
        g2.mark_output(d);
        let order2 = topo::kahn(&g2);
        let spilling = assess(&g2, &order2, CapacityTarget::min_traffic(520)).unwrap();
        assert!(spilling.feasible && !spilling.fits);
        assert!(spilling.rank(1024) < report.rank(1024));
    }

    #[test]
    fn rank_prefers_fit_then_traffic_then_peak() {
        let fit = CapacityReport {
            capacity_bytes: 100,
            objective: CapacityObjective::MinTraffic,
            fits: true,
            feasible: true,
            spill_bytes: 0,
            traffic: None,
        };
        let spill = CapacityReport { fits: false, spill_bytes: 10, ..fit };
        assert!(fit.rank(100) < spill.rank(50), "fitting beats spilling at any peak");
        assert!(fit.rank(80) < fit.rank(90), "peak breaks ties");
    }

    #[test]
    fn only_min_traffic_salts_fingerprints() {
        assert_eq!(CapacityTarget::fit(1024).cache_salt(), 0);
        assert_ne!(CapacityTarget::min_traffic(1024).cache_salt(), 0);
        assert_ne!(
            CapacityTarget::min_traffic(1024).cache_salt(),
            CapacityTarget::min_traffic(2048).cache_salt(),
            "different capacities must key distinctly"
        );
        assert!(!CapacityTarget::fit(1024).steers_search());
        assert!(CapacityTarget::min_traffic(1024).steers_search());
    }
}
