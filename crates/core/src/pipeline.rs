//! The end-to-end SERENITY pipeline (Figure 4): identity graph rewriting →
//! divide-and-conquer partitioning → pluggable backend scheduling →
//! arena memory allocation.
//!
//! Scheduling is delegated to a [`SchedulerBackend`] — adaptive soft
//! budgeting by default, or any strategy from
//! [`BackendRegistry`](crate::registry::BackendRegistry) (including the
//! multi-backend portfolio). The run is governed by [`CompileOptions`]:
//! wall-clock deadline, shared cancellation token, and a structured
//! [`CompileEvent`] sink.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use serenity_allocator::{MemoryPlan, Strategy};
use serenity_ir::cuts::PartitionSummary;
use serenity_ir::Graph;

use crate::backend::{
    AdaptiveBackend, BeamBackend, BoundHandle, CancelToken, CompileContext, CompileEvent,
    CompileOptions, DpBackend, SchedulerBackend,
};
use crate::budget::BudgetConfig;
use crate::cache::CompileCache;
use crate::capacity::{CapacityReport, CapacityTarget};
use crate::divide::DivideAndConquer;
use crate::fault::{panic_message, FaultPlan, FaultPoint};
use crate::memo::ScheduleMemo;
use crate::rewrite::{AppliedRewrite, RewriteSearchConfig, RewriteSearchSummary, Rewriter};
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Minimum wall-clock budget worth handing to a non-final degradation
/// rung; below this the ladder skips straight to its last (cheapest)
/// rung so a blown deadline still yields *some* valid schedule.
const MIN_RUNG_BUDGET: Duration = Duration::from_millis(5);

/// Whether and how graph rewriting participates in compilation.
///
/// The presets map onto the two rewrite drivers:
///
/// * [`RewriteMode::IfBeneficial`] (default) runs the cost-guided
///   [`RewriteSearch`](crate::rewrite::RewriteSearch): candidates are scored
///   by scheduling (see [`SerenityBuilder::rewrite_score_backend`]) and kept
///   only on strict peak reduction; the winner is then re-scheduled by the
///   full backend and still has to beat the original graph.
/// * [`RewriteMode::Always`] keeps the legacy blind fixpoint
///   ([`Rewriter::rewrite`]): every matched site is applied once, no
///   scheduler in the loop, and the rewritten graph is kept unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewriteMode {
    /// Never rewrite (the paper's "Dynamic Programming + Memory Allocator"
    /// configuration).
    Off,
    /// Blind fixpoint: always schedule the rewritten graph when any rule
    /// matched, whether or not it helps.
    Always,
    /// Cost-guided search, keeping the better graph — Equation (2)'s
    /// `argmin over transformations`. The default.
    #[default]
    IfBeneficial,
}

/// Builder for [`Serenity`].
///
/// # Example: choosing a backend
///
/// Any [`SchedulerBackend`] can drive scheduling (the deprecated
/// `plain_dp`/`adaptive_budget`/`segment_scheduler` shims forward here):
///
/// ```
/// use std::sync::Arc;
///
/// use serenity_core::backend::{AdaptiveBackend, DpBackend};
/// use serenity_core::budget::BudgetConfig;
/// use serenity_core::dp::DpConfig;
/// use serenity_core::pipeline::Serenity;
///
/// // Formerly `Serenity::builder().plain_dp(config)`:
/// let dp = Serenity::builder().backend(Arc::new(DpBackend::with_config(DpConfig::default())));
/// // Formerly `Serenity::builder().adaptive_budget(config)`:
/// let adaptive = Serenity::builder()
///     .backend(Arc::new(AdaptiveBackend::with_config(BudgetConfig::default())));
/// # let (_, _) = (dp.build(), adaptive.build());
/// ```
#[derive(Clone)]
pub struct SerenityBuilder {
    rewrite: RewriteMode,
    rewrite_search: RewriteSearchConfig,
    rewrite_scorer: Option<Arc<dyn SchedulerBackend>>,
    backend: Arc<dyn SchedulerBackend>,
    allocator: Option<Strategy>,
    divide: bool,
    options: CompileOptions,
    fallbacks: Vec<Arc<dyn SchedulerBackend>>,
}

impl std::fmt::Debug for SerenityBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerenityBuilder")
            .field("rewrite", &self.rewrite)
            .field("rewrite_search", &self.rewrite_search)
            .field("rewrite_scorer", &self.rewrite_scorer.as_ref().map(|b| b.name().to_owned()))
            .field("backend", &self.backend.name())
            .field("allocator", &self.allocator)
            .field("divide", &self.divide)
            .field("options", &self.options)
            .field(
                "fallbacks",
                &self.fallbacks.iter().map(|b| b.name().to_owned()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for SerenityBuilder {
    fn default() -> Self {
        SerenityBuilder::new()
    }
}

impl SerenityBuilder {
    /// Creates the default builder: rewriting if beneficial, adaptive soft
    /// budgeting, divide-and-conquer on, and greedy-by-size offset planning
    /// (TFLite's `ArenaPlanner` policy, which both the baseline and SERENITY
    /// numbers use in the paper's comparison).
    pub fn new() -> Self {
        SerenityBuilder {
            rewrite: RewriteMode::IfBeneficial,
            rewrite_search: RewriteSearchConfig::default(),
            rewrite_scorer: None,
            backend: Arc::new(AdaptiveBackend::default()),
            allocator: Some(Strategy::GreedyBySize),
            divide: true,
            options: CompileOptions::default(),
            fallbacks: Vec::new(),
        }
    }

    /// Sets the rewrite mode.
    pub fn rewrite(mut self, mode: RewriteMode) -> Self {
        self.rewrite = mode;
        self
    }

    /// Tunes the cost-guided rewrite loop (iteration cap, candidate budget;
    /// only used under [`RewriteMode::IfBeneficial`]).
    pub fn rewrite_search(mut self, config: RewriteSearchConfig) -> Self {
        self.rewrite_search = config;
        self
    }

    /// Sets how many worker threads score each rewrite-loop iteration's
    /// candidate set (default 1 = serial). Parallel scoring is replayed
    /// deterministically, so any thread count compiles to a bit-identical
    /// result — this is purely a wall-clock knob.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn rewrite_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one rewrite-scoring thread is required");
        self.rewrite_search.threads = threads;
        self
    }

    /// Sets the backend that *scores* rewrite candidates (default: cheap
    /// bounded-width beam search). The final winner is always re-scheduled
    /// by the full [`SerenityBuilder::backend`], so an approximate scorer
    /// can mis-rank candidates but never push the compiled result above
    /// the rewrite-off peak.
    pub fn rewrite_score_backend(mut self, backend: Arc<dyn SchedulerBackend>) -> Self {
        self.rewrite_scorer = Some(backend);
        self
    }

    /// Sets the scheduling backend (whole-graph, or per segment when
    /// divide-and-conquer is enabled).
    pub fn backend(mut self, backend: Arc<dyn SchedulerBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces all compile options at once.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets a wall-clock deadline for each [`Serenity::compile`] call.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Shares a cancellation token with the compiler.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.options.cancel = token;
        self
    }

    /// Installs a structured event sink.
    pub fn on_event(mut self, sink: impl Fn(&CompileEvent) + Send + Sync + 'static) -> Self {
        self.options = self.options.on_event(sink);
        self
    }

    /// Shares a process-wide [`CompileCache`] with this compiler: segment
    /// schedules (and, without divide-and-conquer, whole-graph schedules)
    /// are replayed across [`Serenity::compile`] calls and across every
    /// compiler holding a clone of the same `Arc`. Entries are keyed by
    /// each backend's
    /// [`config_fingerprint`](SchedulerBackend::config_fingerprint), so
    /// mixing differently configured compilers on one cache is safe, and
    /// cached runs stay bit-identical to cache-free runs.
    pub fn compile_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.options.cache = Some(cache);
        self
    }

    /// Shorthand: adaptive soft budgeting with the given configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use .backend(Arc::new(AdaptiveBackend::with_config(config))) instead"
    )]
    pub fn adaptive_budget(self, config: BudgetConfig) -> Self {
        self.backend(Arc::new(AdaptiveBackend::with_config(config)))
    }

    /// Shorthand: plain DP with the given configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use .backend(Arc::new(DpBackend::with_config(config))) instead"
    )]
    pub fn plain_dp(self, config: crate::dp::DpConfig) -> Self {
        self.backend(Arc::new(DpBackend::with_config(config)))
    }

    /// Sets how segments (or the whole graph) are scheduled (legacy enum).
    #[deprecated(since = "0.1.0", note = "use SerenityBuilder::backend instead")]
    #[allow(deprecated)]
    pub fn segment_scheduler(self, scheduler: crate::divide::SegmentScheduler) -> Self {
        self.backend(scheduler.into_backend())
    }

    /// Arms a fault-injection plan for every compile run (test-only
    /// surface; see [`crate::fault`]).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.options.fault = Some(plan);
        self
    }

    /// Installs the graceful-degradation ladder consulted by
    /// [`Serenity::compile_resilient`]: when the primary backend errors,
    /// panics, or blows its deadline slice, compilation retries down this
    /// chain (e.g. `dp → beam → kahn`) instead of failing the request.
    /// Fallback rungs compile with rewriting off — their job is a cheap
    /// *valid* schedule, not an optimal one. An empty chain (the default)
    /// makes `compile_resilient` behave exactly like [`Serenity::compile`].
    pub fn fallback_backends(mut self, chain: Vec<Arc<dyn SchedulerBackend>>) -> Self {
        self.fallbacks = chain;
        self
    }

    /// Caps the search's own live memory (DP memo arenas, beam frontiers)
    /// at `bytes`; a search that crosses it fails fast with
    /// [`ScheduleError::MemoryBudgetExceeded`] — which the
    /// [fallback ladder](SerenityBuilder::fallback_backends) treats as an
    /// ordinary rung failure, degrading to a cheaper backend instead of
    /// letting the memo grow unboundedly.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.options.memory_budget = Some(bytes);
        self
    }

    /// Constrains every compile to an on-chip capacity target: the result
    /// carries a verifier-checked
    /// [`CapacityReport`], and under
    /// [`CapacityObjective::MinTraffic`](crate::capacity::CapacityObjective)
    /// the pipeline ranks candidate schedules lexicographically by
    /// `(fits, traffic, peak)` instead of peak alone (see
    /// [`crate::capacity`]).
    pub fn capacity_target(mut self, target: CapacityTarget) -> Self {
        self.options.capacity = Some(target);
        self
    }

    /// Chooses the arena allocator (`None` disables offset planning).
    pub fn allocator(mut self, strategy: Option<Strategy>) -> Self {
        self.allocator = strategy;
        self
    }

    /// Enables or disables divide-and-conquer partitioning.
    pub fn divide_and_conquer(mut self, enabled: bool) -> Self {
        self.divide = enabled;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Serenity {
        Serenity { config: self }
    }
}

/// The SERENITY compiler.
///
/// # Example
///
/// ```
/// use serenity_core::pipeline::Serenity;
/// use serenity_ir::{DType, GraphBuilder, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 4, DType::F32);
/// let l = b.conv1x1(x, 4)?;
/// let r = b.conv1x1(x, 4)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let compiled = Serenity::builder().build().compile(&g)?;
/// assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes);
/// assert!(compiled.arena.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Serenity {
    config: SerenityBuilder,
}

/// Result of compiling a graph.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// The graph that was scheduled (the rewritten one if rewriting won).
    pub graph: Graph,
    /// The chosen schedule of [`CompiledSchedule::graph`].
    pub schedule: Schedule,
    /// Peak activation footprint without the allocator, in bytes
    /// (Figure 12(b) accounting). Equal to `schedule.peak_bytes`.
    pub peak_bytes: u64,
    /// Arena layout under the configured allocator, if enabled.
    pub arena: Option<MemoryPlan>,
    /// Peak of the TensorFlow-Lite-style baseline (Kahn order) on the
    /// *original* graph, for reduction factors.
    pub baseline_peak_bytes: u64,
    /// Rewrites applied to obtain [`CompiledSchedule::graph`] (empty when the
    /// original graph was kept).
    pub rewrites: Vec<AppliedRewrite>,
    /// Report of the cost-guided rewrite loop (`None` under
    /// [`RewriteMode::Off`] and [`RewriteMode::Always`]). Present even when
    /// the original graph won the final comparison.
    pub rewrite_search: Option<RewriteSearchSummary>,
    /// Partition used by divide-and-conquer.
    pub partition: PartitionSummary,
    /// Aggregate search statistics (all scheduling work, including the
    /// losing rewrite candidate's — merged via [`ScheduleStats::absorb`]).
    pub stats: ScheduleStats,
    /// End-to-end compilation wall-clock time.
    pub compile_time: Duration,
    /// Capacity assessment of the chosen schedule (`None` when no
    /// [`CapacityTarget`] was configured). Recomputed independently by
    /// [`verify`](crate::verify::verify), which rejects any report that
    /// under-claims traffic or fabricates `fits`.
    pub capacity: Option<CapacityReport>,
}

impl CompiledSchedule {
    /// Peak-footprint reduction versus the TFLite-style baseline
    /// (the Figure 10 metric): `baseline / serenity`.
    pub fn reduction_factor(&self) -> f64 {
        if self.peak_bytes == 0 {
            1.0
        } else {
            self.baseline_peak_bytes as f64 / self.peak_bytes as f64
        }
    }

    /// Arena size in bytes when allocation was enabled.
    pub fn arena_bytes(&self) -> Option<u64> {
        self.arena.as_ref().map(|p| p.arena_bytes)
    }
}

/// One failed rung in the degradation ladder's provenance trail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DegradeStep {
    /// Name of the backend that was tried.
    pub backend: String,
    /// Why it did not produce the result (error message, or
    /// `panic: ...` when the rung panicked and was contained).
    pub error: String,
}

/// Outcome of [`Serenity::compile_resilient`]: the compiled schedule
/// plus how far down the degradation ladder it came from.
#[derive(Debug)]
pub struct ResilientCompile {
    /// The compiled schedule (from the primary backend, or a fallback).
    pub compiled: CompiledSchedule,
    /// `true` when a fallback rung — not the primary backend — produced
    /// the result.
    pub degraded: bool,
    /// Name of the fallback backend that produced the result (`None`
    /// when the primary succeeded).
    pub fallback_backend: Option<String>,
    /// The rungs that failed before one succeeded (empty when the
    /// primary succeeded).
    pub attempts: Vec<DegradeStep>,
}

impl Serenity {
    /// Starts building a compiler.
    pub fn builder() -> SerenityBuilder {
        SerenityBuilder::new()
    }

    /// Compiles `graph`: rewrites (per mode), schedules, and plans memory.
    ///
    /// The deadline clock starts when this method is entered; events flow to
    /// the configured sink for the duration of the call.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures ([`ScheduleError`], including
    /// [`ScheduleError::DeadlineExceeded`] and [`ScheduleError::Cancelled`])
    /// and graph errors.
    pub fn compile(&self, graph: &Graph) -> Result<CompiledSchedule, ScheduleError> {
        let started = Instant::now();
        let ctx = CompileContext::new(self.config.options.clone());
        ctx.check()?;
        if let Some(fault) = &self.config.options.fault {
            if let Some(delay) = fault.slow_compile_delay() {
                std::thread::sleep(delay);
                // Let the deadline observe the injected slowness.
                ctx.check()?;
            }
            if fault.should_fire(FaultPoint::CompilePanic) {
                panic!("injected fault: compile panic");
            }
            if fault.should_fire(FaultPoint::BudgetExhaust) {
                // Synthesize the error the engines raise when their live
                // memo accounting crosses the budget, so the chaos suite
                // can drive the exhaustion path deterministically.
                let budget = self.config.options.memory_budget.unwrap_or(0);
                return Err(ScheduleError::MemoryBudgetExceeded {
                    used: budget.saturating_add(1),
                    budget,
                });
            }
        }
        let baseline_peak_bytes = crate::baseline::kahn(graph)?.peak_bytes;

        // Candidate boundaries delimit the event stream: segment/probe
        // events between two `CandidateStarted`s (or up to `CandidateKept`)
        // belong to that candidate's scheduling pass.
        ctx.emit(CompileEvent::CandidateStarted { rewritten: false, nodes: graph.len() });
        let (original_schedule, original_partition, original_stats) =
            self.schedule_one(graph, &ctx)?;

        let mut chosen_graph = graph.clone();
        let mut chosen = original_schedule;
        let mut chosen_partition = original_partition;
        let mut stats = original_stats;
        let mut rewrites = Vec::new();
        let mut rewrite_search = None;

        // Capacity mode: every kept schedule carries its assessment, and a
        // traffic-steering target replaces the peak-only comparisons below
        // with the lexicographic `(fits, traffic, peak)` rank.
        let capacity_target = self.config.options.capacity;
        let steers = capacity_target.is_some_and(|t| t.steers_search());
        let mut chosen_report = self.assess_capacity(&chosen_graph, &chosen)?;

        // Obtain the rewritten candidate: cost-guided search (IfBeneficial)
        // or the blind fixpoint (Always).
        let rewritten = match self.config.rewrite {
            RewriteMode::Off => None,
            RewriteMode::Always => {
                let outcome = Rewriter::standard().rewrite(graph);
                outcome.changed().then_some((outcome.graph, outcome.applied))
            }
            RewriteMode::IfBeneficial => {
                let scorer = self
                    .config
                    .rewrite_scorer
                    .clone()
                    .unwrap_or_else(|| Arc::new(BeamBackend::default()));
                let mut search = Rewriter::standard()
                    .cost_guided()
                    .config(self.config.rewrite_search)
                    .score_backend(scorer);
                if let Some(cache) = &self.config.options.cache {
                    search = search.cache(Arc::clone(cache));
                }
                let outcome = search.run(graph, &ctx)?;
                stats.absorb(&outcome.stats);
                let changed = outcome.changed();
                rewrite_search = Some(outcome.summary);
                changed.then_some((outcome.graph, outcome.applied))
            }
        };

        if let Some((rw_graph, rw_applied)) = rewritten {
            ctx.emit(CompileEvent::CandidateStarted { rewritten: true, nodes: rw_graph.len() });
            // Under IfBeneficial the rewritten candidate only wins by beating
            // the original's peak *strictly*, so seed the branch-and-bound
            // engines with the original as a tie-winning incumbent: the
            // re-schedule prunes everything that cannot beat it and exits
            // early (`BoundBeaten`) when nothing can — a cheap "keep the
            // original", not a failure. `Always` keeps the rewrite
            // unconditionally, so it must schedule unseeded.
            // Under a traffic-steering target with a *spilling* incumbent
            // the peak seed would be unsound — a higher-peak order can
            // still win on traffic — so the re-schedule runs unseeded.
            // A fitting incumbent keeps the classic seed: any rival must
            // itself fit, i.e. strictly beat it on peak.
            let spilling_incumbent = steers && chosen_report.as_ref().is_some_and(|r| !r.fits);
            let rw_ctx = match self.config.rewrite {
                RewriteMode::IfBeneficial if !spilling_incumbent => {
                    ctx.with_bound(Some(BoundHandle::seeded_incumbent(chosen.peak_bytes)))
                }
                _ => ctx.clone(),
            };
            match self.schedule_one(&rw_graph, &rw_ctx) {
                Ok((rw_schedule, rw_partition, rw_stats)) => {
                    let rw_report = self.assess_capacity(&rw_graph, &rw_schedule)?;
                    let take_rewrite = match self.config.rewrite {
                        RewriteMode::Always => true,
                        // The search already confirmed improvement under the
                        // scoring backend; this final comparison under the
                        // *full* backend is what guarantees compilation never
                        // regresses below rewrite-off, even with an
                        // approximate scorer.
                        RewriteMode::IfBeneficial if steers => {
                            let rw_rank = rw_report
                                .as_ref()
                                .expect("target set")
                                .rank(rw_schedule.peak_bytes);
                            rw_rank
                                < chosen_report
                                    .as_ref()
                                    .expect("target set")
                                    .rank(chosen.peak_bytes)
                        }
                        RewriteMode::IfBeneficial => rw_schedule.peak_bytes < chosen.peak_bytes,
                        RewriteMode::Off => false,
                    };
                    stats.absorb(&rw_stats);
                    // Keep the summary self-consistent with the compiled
                    // artifact: a winner rejected here was searched but not
                    // adopted.
                    if let Some(summary) = rewrite_search.as_mut() {
                        summary.kept = take_rewrite;
                    }
                    if take_rewrite {
                        // Narrate only the rewrites that actually end up in
                        // the compiled graph; candidates losing the peak
                        // comparison are not "applied" from the caller's
                        // point of view.
                        for applied in &rw_applied {
                            ctx.emit(CompileEvent::RewriteApplied {
                                rule: applied.rule,
                                concat: applied.concat.clone(),
                                consumer: applied.consumer.clone(),
                                branches: applied.branches,
                            });
                        }
                        chosen_graph = rw_graph;
                        chosen = rw_schedule;
                        chosen_partition = rw_partition;
                        chosen_report = rw_report;
                        rewrites = rw_applied;
                    }
                }
                Err(ScheduleError::BoundBeaten { .. }) => {
                    // The rewritten graph provably cannot beat the original
                    // schedule: keep the original and record the race loss.
                    stats.bound_beaten_exits += 1;
                    if let Some(summary) = rewrite_search.as_mut() {
                        summary.kept = false;
                    }
                }
                Err(other) => return Err(other),
            }
        }
        // Among the schedules attaining the optimal peak, a run-to-completion
        // order (`canon::stackify`) often allocates more tightly — but not
        // always, so when an allocator is configured both candidates are
        // planned and the smaller arena wins at identical live peak. A
        // traffic-steering target ranks the candidates on
        // `(fits, traffic, peak)` first: the canonical order preserves the
        // peak but not necessarily the traffic, so it must not displace a
        // lower-traffic schedule, and conversely wins outright when it
        // lowers the traffic.
        let canonical = crate::canon::stackify(&chosen_graph, chosen.peak_bytes)
            .and_then(|order| Schedule::from_order(&chosen_graph, order).ok());
        let canonical = match canonical {
            Some(candidate) => {
                let report = self.assess_capacity(&chosen_graph, &candidate)?;
                Some((candidate, report))
            }
            None => None,
        };
        fn rank_cmp(
            candidate: &Schedule,
            report: &Option<CapacityReport>,
            chosen: &Schedule,
            chosen_report: &Option<CapacityReport>,
        ) -> std::cmp::Ordering {
            report
                .as_ref()
                .expect("target set")
                .rank(candidate.peak_bytes)
                .cmp(&chosen_report.as_ref().expect("target set").rank(chosen.peak_bytes))
        }

        let mut arena = None;
        if let Some(strategy) = self.config.allocator {
            let plan_for = |schedule: &Schedule| {
                serenity_allocator::plan(&chosen_graph, &schedule.order, strategy).map_err(|e| {
                    match e {
                        serenity_allocator::AllocError::Graph(g) => ScheduleError::Graph(g),
                        other => ScheduleError::Graph(serenity_ir::GraphError::InvalidOrder {
                            detail: other.to_string(),
                        }),
                    }
                })
            };
            let mut best = plan_for(&chosen)?;
            if let Some((candidate, report)) = canonical {
                let candidate_plan = plan_for(&candidate)?;
                let accept = if steers {
                    match rank_cmp(&candidate, &report, &chosen, &chosen_report) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => candidate_plan.arena_bytes < best.arena_bytes,
                        std::cmp::Ordering::Greater => false,
                    }
                } else {
                    candidate_plan.arena_bytes < best.arena_bytes
                };
                if accept {
                    chosen = candidate;
                    chosen_report = report;
                    best = candidate_plan;
                }
            }
            arena = Some(best);
        } else if let Some((candidate, report)) = canonical {
            debug_assert!(candidate.peak_bytes <= chosen.peak_bytes);
            if !steers
                || rank_cmp(&candidate, &report, &chosen, &chosen_report)
                    != std::cmp::Ordering::Greater
            {
                chosen = candidate;
                chosen_report = report;
            }
        }

        ctx.emit(CompileEvent::CandidateKept {
            rewritten: !rewrites.is_empty(),
            peak_bytes: chosen.peak_bytes,
        });
        if let Some(cache) = &self.config.options.cache {
            let snapshot = cache.stats();
            ctx.emit(CompileEvent::CacheReport {
                hits: snapshot.hits,
                misses: snapshot.misses,
                evictions: snapshot.evictions,
                entries: snapshot.entries,
                entry_bytes: snapshot.entry_bytes,
            });
        }
        let compile_time = started.elapsed();
        let compiled = CompiledSchedule {
            peak_bytes: chosen.peak_bytes,
            graph: chosen_graph,
            schedule: chosen,
            arena,
            baseline_peak_bytes,
            rewrites,
            rewrite_search,
            partition: chosen_partition,
            stats,
            compile_time,
            capacity: chosen_report,
        };
        // Debug builds certify every compile through the independent
        // checker; release builds leave verification to opt-in callers
        // (`--verify`, `?verify=1`).
        #[cfg(debug_assertions)]
        if let Err(failure) = crate::verify::verify(graph, &compiled) {
            panic!("pipeline produced an uncertifiable schedule: {failure}");
        }
        Ok(compiled)
    }

    /// Compiles `graph` with graceful degradation down the configured
    /// [`fallback chain`](SerenityBuilder::fallback_backends).
    ///
    /// With an empty chain this is exactly [`Serenity::compile`] (same
    /// behaviour, panics propagate, results bit-identical). With a chain
    /// installed, each rung — the primary backend first, then each
    /// fallback in order — is tried with a slice of the remaining
    /// wall-clock budget: non-final rungs get half of what is left (so a
    /// blown deadline cannot starve the cheaper rungs behind it), the
    /// final rung gets everything remaining, and rungs whose slice would
    /// fall below a small floor are skipped in favour of the final rung.
    /// A rung that errors, panics (contained via `catch_unwind`), or
    /// exceeds its slice is recorded in the provenance trail and the
    /// next rung runs. Fallback rungs compile with rewriting off.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Cancelled`] as soon as cancellation is observed
    /// (the ladder never retries a cancelled request); otherwise the
    /// last rung's error when every rung failed.
    pub fn compile_resilient(&self, graph: &Graph) -> Result<ResilientCompile, ScheduleError> {
        if self.config.fallbacks.is_empty() {
            return self.compile(graph).map(|compiled| ResilientCompile {
                compiled,
                degraded: false,
                fallback_backend: None,
                attempts: Vec::new(),
            });
        }
        let started = Instant::now();
        let overall_deadline = self.config.options.deadline;
        let total_rungs = 1 + self.config.fallbacks.len();
        let mut attempts = Vec::new();
        let mut last_error: Option<ScheduleError> = None;
        let rungs =
            std::iter::once(&self.config.backend).chain(self.config.fallbacks.iter()).enumerate();
        for (i, backend) in rungs {
            if self.config.options.cancel.is_cancelled() {
                return Err(ScheduleError::Cancelled);
            }
            let is_last = i + 1 == total_rungs;
            let remaining = overall_deadline.map(|d| d.saturating_sub(started.elapsed()));
            if let Some(rem) = remaining {
                if !is_last && rem < MIN_RUNG_BUDGET {
                    // Not worth burning the tail of the budget on an
                    // expensive rung: skip ahead to the cheapest one.
                    attempts.push(DegradeStep {
                        backend: backend.name().to_owned(),
                        error: format!("skipped: {rem:?} of budget left"),
                    });
                    continue;
                }
            }
            let mut rung_cfg = self.config.clone();
            rung_cfg.backend = Arc::clone(backend);
            rung_cfg.fallbacks = Vec::new();
            rung_cfg.options.deadline = match remaining {
                None => None,
                Some(rem) if is_last => Some(rem),
                Some(rem) => Some(rem / 2),
            };
            if i > 0 {
                // Fallback rungs trade optimality for certainty: no
                // rewrite search, just schedule the graph as-is.
                rung_cfg.rewrite = RewriteMode::Off;
            }
            let rung = Serenity { config: rung_cfg };
            match catch_unwind(AssertUnwindSafe(|| rung.compile(graph))) {
                Ok(Ok(compiled)) => {
                    return Ok(ResilientCompile {
                        compiled,
                        degraded: i > 0,
                        fallback_backend: (i > 0).then(|| backend.name().to_owned()),
                        attempts,
                    });
                }
                Ok(Err(ScheduleError::Cancelled)) => return Err(ScheduleError::Cancelled),
                Ok(Err(e)) => {
                    attempts.push(DegradeStep {
                        backend: backend.name().to_owned(),
                        error: e.to_string(),
                    });
                    last_error = Some(e);
                }
                Err(payload) => {
                    let detail = panic_message(payload.as_ref());
                    attempts.push(DegradeStep {
                        backend: backend.name().to_owned(),
                        error: format!("panic: {detail}"),
                    });
                    last_error = Some(ScheduleError::Panicked { detail });
                }
            }
        }
        Err(last_error.unwrap_or(ScheduleError::Cancelled))
    }

    /// Assesses `schedule` against the configured capacity target (`None`
    /// when no target is set).
    fn assess_capacity(
        &self,
        graph: &Graph,
        schedule: &Schedule,
    ) -> Result<Option<CapacityReport>, ScheduleError> {
        let Some(target) = self.config.options.capacity else {
            return Ok(None);
        };
        crate::capacity::assess_for_driver(graph, &schedule.order, target).map(Some)
    }

    /// The backend fingerprint used for cache/memo keys: the backend's own
    /// [`config_fingerprint`](SchedulerBackend::config_fingerprint), salted
    /// with the capacity target when it steers the search (a
    /// traffic-steering portfolio can pick different winners at different
    /// capacities, so those schedules must never replay each other).
    fn backend_cache_fingerprint(&self) -> u64 {
        let fingerprint = self.config.backend.config_fingerprint();
        match self.config.options.capacity {
            Some(target) => fingerprint ^ target.cache_salt(),
            None => fingerprint,
        }
    }

    fn schedule_one(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<(Schedule, PartitionSummary, ScheduleStats), ScheduleError> {
        if self.config.divide {
            let mut scheduler = DivideAndConquer::new().backend(Arc::clone(&self.config.backend));
            if let Some(cache) = &self.config.options.cache {
                // Segment schedules flow through a cache-backed memo: hits
                // replay work done by earlier requests (possibly for other
                // networks sharing cells), misses are published for later
                // ones. Replays are exact, so warm compiles stay
                // bit-identical to cold ones.
                scheduler = scheduler.memo(Arc::new(ScheduleMemo::backed(
                    Arc::clone(cache),
                    self.backend_cache_fingerprint(),
                )));
            }
            let outcome = scheduler.schedule_with_ctx(graph, ctx)?;
            Ok((outcome.schedule, outcome.partition, outcome.total_stats))
        } else {
            let partition = PartitionSummary {
                total_nodes: graph.len(),
                segment_sizes: vec![graph.len()],
                cut_count: 0,
            };
            // Without divide-and-conquer the whole graph is the unit of
            // reuse: consult the cache directly.
            let cache_key =
                self.config.options.cache.as_ref().map(|cache| {
                    (cache, self.backend_cache_fingerprint(), ScheduleMemo::key(graph))
                });
            if let Some((cache, backend_key, key)) = &cache_key {
                if let Some(schedule) = cache.lookup(*backend_key, *key, graph, &[]) {
                    let stats = ScheduleStats {
                        cache_hits: 1,
                        steps: schedule.len(),
                        ..Default::default()
                    };
                    return Ok((schedule, partition, stats));
                }
            }
            let outcome = self.config.backend.schedule(graph, ctx)?;
            let mut stats = outcome.stats;
            if let Some((cache, backend_key, key)) = &cache_key {
                stats.cache_misses += 1;
                cache.insert(*backend_key, *key, graph, &[], &outcome.schedule);
            }
            Ok((outcome.schedule, partition, stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BackendRegistry;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn concat_cell() -> Graph {
        let mut b = GraphBuilder::new("cell");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let b1 = b.conv1x1(x, 8).unwrap();
        let b2 = b.conv1x1(x, 8).unwrap();
        let b3 = b.conv1x1(x, 8).unwrap();
        let cat = b.concat(&[b1, b2, b3]).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    #[test]
    fn full_pipeline_beats_baseline() {
        let g = concat_cell();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes);
        assert!(compiled.reduction_factor() >= 1.0);
        let arena = compiled.arena.expect("allocator enabled by default");
        arena.validate().unwrap();
        assert!(arena.arena_bytes >= compiled.peak_bytes);
    }

    #[test]
    fn rewriting_improves_this_cell() {
        let g = concat_cell();
        let without = Serenity::builder().rewrite(RewriteMode::Off).build().compile(&g).unwrap();
        let with =
            Serenity::builder().rewrite(RewriteMode::IfBeneficial).build().compile(&g).unwrap();
        assert!(with.peak_bytes < without.peak_bytes);
        assert!(!with.rewrites.is_empty());
        assert!(with.graph.len() > g.len());
    }

    #[test]
    fn if_beneficial_never_hurts() {
        // A plain chain: rewriting finds nothing, graph stays as-is.
        let mut b = GraphBuilder::new("plain");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let y = b.conv(x, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        let g = b.finish();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert!(compiled.rewrites.is_empty());
        assert_eq!(compiled.graph, g);
    }

    #[test]
    fn allocator_can_be_disabled() {
        let g = concat_cell();
        let compiled = Serenity::builder().allocator(None).build().compile(&g).unwrap();
        assert!(compiled.arena.is_none());
    }

    #[test]
    fn no_divide_matches_divide_on_peak() {
        let g = concat_cell();
        let divided = Serenity::builder().build().compile(&g).unwrap();
        let whole = Serenity::builder().divide_and_conquer(false).build().compile(&g).unwrap();
        assert_eq!(divided.peak_bytes, whole.peak_bytes);
    }

    #[test]
    fn schedule_covers_all_nodes() {
        let g = concat_cell();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert_eq!(compiled.schedule.order.len(), compiled.graph.len());
        assert!(serenity_ir::topo::is_order(&compiled.graph, &compiled.schedule.order));
    }

    #[test]
    fn every_registered_backend_compiles_the_cell() {
        let g = concat_cell();
        let registry = BackendRegistry::standard();
        for name in registry.names() {
            if name == "brute-force" {
                continue; // the rewritten cell exceeds the brute-force cap
            }
            let backend = registry.create(&name).unwrap();
            let compiled = Serenity::builder().backend(backend).build().compile(&g).unwrap();
            assert!(
                serenity_ir::topo::is_order(&compiled.graph, &compiled.schedule.order),
                "{name} produced an invalid order"
            );
            assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes, "{name} lost to kahn");
        }
    }

    #[test]
    fn zero_deadline_aborts_compilation() {
        let g = concat_cell();
        let err = Serenity::builder().deadline(Duration::ZERO).build().compile(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::DeadlineExceeded { .. }));
    }

    #[test]
    fn events_narrate_the_compile() {
        use std::sync::Mutex;
        let g = concat_cell();
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let compiled = Serenity::builder()
            .on_event(move |e| sink.lock().unwrap().push(e.clone()))
            .build()
            .compile(&g)
            .unwrap();
        let events = seen.lock().unwrap();
        let applied =
            events.iter().filter(|e| matches!(e, CompileEvent::RewriteApplied { .. })).count();
        assert_eq!(
            applied,
            compiled.rewrites.len(),
            "exactly the kept rewrites should be narrated"
        );
        assert!(applied > 0, "this cell rewrites beneficially");
        assert!(
            events.iter().any(|e| matches!(e, CompileEvent::SegmentScheduled { .. })),
            "segments should be narrated"
        );
        assert!(
            events.iter().any(|e| matches!(e, CompileEvent::BudgetProbe { .. })),
            "budget probes should be narrated"
        );
        // Candidate boundaries attribute segment/probe events to a pass,
        // and the closing event reports the kept schedule.
        assert!(matches!(
            events.first(),
            Some(CompileEvent::CandidateStarted { rewritten: false, .. })
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, CompileEvent::CandidateStarted { rewritten: true, .. })));
        match events.last() {
            Some(CompileEvent::CandidateKept { rewritten, peak_bytes }) => {
                assert_eq!(*rewritten, !compiled.rewrites.is_empty());
                assert_eq!(*peak_bytes, compiled.peak_bytes);
            }
            other => panic!("stream must end with CandidateKept, got {other:?}"),
        }
    }

    #[test]
    fn losing_rewrite_candidates_are_not_narrated_as_applied() {
        use std::sync::Mutex;
        // DARTS-less stand-in: force the rewritten candidate to lose by
        // comparing against RewriteMode::Always, which must narrate, while
        // an IfBeneficial run that keeps the original must not.
        let g = concat_cell();
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let compiled = Serenity::builder()
            .rewrite(RewriteMode::IfBeneficial)
            .on_event(move |e| sink.lock().unwrap().push(e.clone()))
            .build()
            .compile(&g)
            .unwrap();
        let narrated = seen
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, CompileEvent::RewriteApplied { .. }))
            .count();
        // Invariant under either outcome: narration matches what was kept.
        assert_eq!(narrated, compiled.rewrites.len());
    }

    #[test]
    fn portfolio_backend_narrates_its_choice_through_the_pipeline() {
        use std::sync::Mutex;
        let g = concat_cell();
        let seen: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        Serenity::builder()
            .backend(Arc::new(crate::registry::PortfolioBackend::standard()))
            .on_event(move |e| sink.lock().unwrap().push(e.clone()))
            .build()
            .compile(&g)
            .unwrap();
        assert!(seen
            .lock()
            .unwrap()
            .iter()
            .any(|e| matches!(e, CompileEvent::BackendChosen { .. })));
    }

    /// A backend that always panics, for ladder containment tests.
    struct PanickingBackend;

    impl SchedulerBackend for PanickingBackend {
        fn name(&self) -> &str {
            "panicking-test-backend"
        }

        fn schedule(
            &self,
            _graph: &Graph,
            _ctx: &CompileContext,
        ) -> Result<crate::backend::BackendOutcome, ScheduleError> {
            panic!("deliberate test panic");
        }
    }

    #[test]
    fn resilient_with_empty_chain_matches_plain_compile() {
        let g = concat_cell();
        let plain = Serenity::builder().build().compile(&g).unwrap();
        let resilient = Serenity::builder().build().compile_resilient(&g).unwrap();
        assert!(!resilient.degraded);
        assert!(resilient.attempts.is_empty());
        assert_eq!(resilient.compiled.peak_bytes, plain.peak_bytes);
        assert_eq!(resilient.compiled.schedule.order, plain.schedule.order);
    }

    #[test]
    fn ladder_degrades_past_a_panicking_primary() {
        let g = concat_cell();
        let registry = BackendRegistry::standard();
        let resilient = Serenity::builder()
            .backend(Arc::new(PanickingBackend))
            .fallback_backends(vec![registry.create("kahn").unwrap()])
            .build()
            .compile_resilient(&g)
            .unwrap();
        assert!(resilient.degraded);
        assert_eq!(resilient.fallback_backend.as_deref(), Some("kahn"));
        assert_eq!(resilient.attempts.len(), 1);
        assert!(resilient.attempts[0].error.contains("panic"));
        assert!(serenity_ir::topo::is_order(
            &resilient.compiled.graph,
            &resilient.compiled.schedule.order
        ));
    }

    #[test]
    fn ladder_reports_every_failed_rung_when_all_fail() {
        let g = concat_cell();
        let err = Serenity::builder()
            .backend(Arc::new(PanickingBackend))
            .fallback_backends(vec![Arc::new(PanickingBackend)])
            .build()
            .compile_resilient(&g)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Panicked { .. }));
    }

    #[test]
    fn ladder_never_retries_a_cancelled_compile() {
        let g = concat_cell();
        let token = CancelToken::new();
        token.cancel();
        let registry = BackendRegistry::standard();
        let err = Serenity::builder()
            .cancel_token(token)
            .fallback_backends(vec![registry.create("kahn").unwrap()])
            .build()
            .compile_resilient(&g)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
    }

    #[test]
    fn ladder_recovers_from_a_blown_deadline() {
        // A zero deadline fails the primary (and every budgeted rung),
        // but the final rung still runs with whatever is left — the
        // cheap list scheduler finishes effectively instantly.
        let g = concat_cell();
        let registry = BackendRegistry::standard();
        let resilient = Serenity::builder()
            .deadline(Duration::ZERO)
            .fallback_backends(vec![registry.create("kahn").unwrap()])
            .build()
            .compile_resilient(&g);
        // The final rung gets a zero budget too, so either outcome is a
        // structured one: a degraded schedule or a typed deadline error.
        match resilient {
            Ok(r) => assert!(r.degraded),
            Err(e) => assert!(matches!(e, ScheduleError::DeadlineExceeded { .. })),
        }
    }

    #[test]
    fn injected_compile_panic_fires_then_clears() {
        let g = concat_cell();
        let plan =
            Arc::new(crate::fault::FaultPlan::parse("compile-panic=1", 0).expect("plan parses"));
        let compiler = Serenity::builder().fault_plan(Arc::clone(&plan)).build();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| compiler.compile(&g))).is_err();
        assert!(panicked, "armed compile-panic point must fire");
        assert_eq!(plan.fired(FaultPoint::CompilePanic), 1);
        let second = compiler.compile(&g).expect("count exhausted, compile succeeds");
        let clean = Serenity::builder().build().compile(&g).expect("fault-free compile");
        assert_eq!(second.peak_bytes, clean.peak_bytes, "fault harness must not change results");
        assert_eq!(second.schedule.order, clean.schedule.order);
    }

    #[test]
    fn injected_slow_compile_trips_the_deadline() {
        let g = concat_cell();
        let plan = Arc::new(
            crate::fault::FaultPlan::parse("slow-compile=1:30ms", 0).expect("plan parses"),
        );
        let err = Serenity::builder()
            .fault_plan(plan)
            .deadline(Duration::from_millis(5))
            .build()
            .compile(&g)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::DeadlineExceeded { .. }));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builder_shims_forward() {
        let g = concat_cell();
        let via_shim = Serenity::builder()
            .plain_dp(crate::dp::DpConfig::default())
            .build()
            .compile(&g)
            .unwrap();
        let via_backend = Serenity::builder()
            .backend(Arc::new(DpBackend::default()))
            .build()
            .compile(&g)
            .unwrap();
        assert_eq!(via_shim.peak_bytes, via_backend.peak_bytes);
    }
}
