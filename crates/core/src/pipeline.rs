//! The end-to-end SERENITY pipeline (Figure 4): identity graph rewriting →
//! divide-and-conquer partitioning → dynamic-programming scheduling with
//! adaptive soft budgeting → arena memory allocation.

use std::time::{Duration, Instant};

use serenity_allocator::{MemoryPlan, Strategy};
use serenity_ir::cuts::PartitionSummary;
use serenity_ir::Graph;

use crate::budget::BudgetConfig;
use crate::divide::{DivideAndConquer, SegmentScheduler};
use crate::rewrite::{AppliedRewrite, Rewriter};
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Whether and how graph rewriting participates in compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewriteMode {
    /// Never rewrite (the paper's "Dynamic Programming + Memory Allocator"
    /// configuration).
    Off,
    /// Always schedule the rewritten graph when any rule matched.
    Always,
    /// Schedule both graphs and keep the better peak — Equation (2)'s
    /// `argmin over transformations`. The default.
    #[default]
    IfBeneficial,
}

/// Builder for [`Serenity`].
#[derive(Debug, Clone, Default)]
pub struct SerenityBuilder {
    rewrite: RewriteMode,
    segment_scheduler: SegmentScheduler,
    allocator: Option<Strategy>,
    divide: bool,
}

impl SerenityBuilder {
    /// Creates the default builder: rewriting if beneficial, adaptive soft
    /// budgeting, divide-and-conquer on, and greedy-by-size offset planning
    /// (TFLite's `ArenaPlanner` policy, which both the baseline and SERENITY
    /// numbers use in the paper's comparison).
    pub fn new() -> Self {
        SerenityBuilder {
            rewrite: RewriteMode::IfBeneficial,
            segment_scheduler: SegmentScheduler::default(),
            allocator: Some(Strategy::GreedyBySize),
            divide: true,
        }
    }

    /// Sets the rewrite mode.
    pub fn rewrite(mut self, mode: RewriteMode) -> Self {
        self.rewrite = mode;
        self
    }

    /// Sets how segments (or the whole graph) are scheduled.
    pub fn segment_scheduler(mut self, scheduler: SegmentScheduler) -> Self {
        self.segment_scheduler = scheduler;
        self
    }

    /// Shorthand: adaptive soft budgeting with the given configuration.
    pub fn adaptive_budget(mut self, config: BudgetConfig) -> Self {
        self.segment_scheduler = SegmentScheduler::Adaptive(config);
        self
    }

    /// Shorthand: plain DP with the given configuration.
    pub fn plain_dp(mut self, config: crate::dp::DpConfig) -> Self {
        self.segment_scheduler = SegmentScheduler::Dp(config);
        self
    }

    /// Chooses the arena allocator (`None` disables offset planning).
    pub fn allocator(mut self, strategy: Option<Strategy>) -> Self {
        self.allocator = strategy;
        self
    }

    /// Enables or disables divide-and-conquer partitioning.
    pub fn divide_and_conquer(mut self, enabled: bool) -> Self {
        self.divide = enabled;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Serenity {
        Serenity { config: self }
    }
}

/// The SERENITY compiler.
///
/// # Example
///
/// ```
/// use serenity_core::pipeline::Serenity;
/// use serenity_ir::{DType, GraphBuilder, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 4, DType::F32);
/// let l = b.conv1x1(x, 4)?;
/// let r = b.conv1x1(x, 4)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let compiled = Serenity::builder().build().compile(&g)?;
/// assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes);
/// assert!(compiled.arena.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Serenity {
    config: SerenityBuilder,
}

/// Result of compiling a graph.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// The graph that was scheduled (the rewritten one if rewriting won).
    pub graph: Graph,
    /// The chosen schedule of [`CompiledSchedule::graph`].
    pub schedule: Schedule,
    /// Peak activation footprint without the allocator, in bytes
    /// (Figure 12(b) accounting). Equal to `schedule.peak_bytes`.
    pub peak_bytes: u64,
    /// Arena layout under the configured allocator, if enabled.
    pub arena: Option<MemoryPlan>,
    /// Peak of the TensorFlow-Lite-style baseline (Kahn order) on the
    /// *original* graph, for reduction factors.
    pub baseline_peak_bytes: u64,
    /// Rewrites applied to obtain [`CompiledSchedule::graph`] (empty when the
    /// original graph was kept).
    pub rewrites: Vec<AppliedRewrite>,
    /// Partition used by divide-and-conquer.
    pub partition: PartitionSummary,
    /// Aggregate search statistics.
    pub stats: ScheduleStats,
    /// End-to-end compilation wall-clock time.
    pub compile_time: Duration,
}

impl CompiledSchedule {
    /// Peak-footprint reduction versus the TFLite-style baseline
    /// (the Figure 10 metric): `baseline / serenity`.
    pub fn reduction_factor(&self) -> f64 {
        if self.peak_bytes == 0 {
            1.0
        } else {
            self.baseline_peak_bytes as f64 / self.peak_bytes as f64
        }
    }

    /// Arena size in bytes when allocation was enabled.
    pub fn arena_bytes(&self) -> Option<u64> {
        self.arena.as_ref().map(|p| p.arena_bytes)
    }
}

impl Serenity {
    /// Starts building a compiler.
    pub fn builder() -> SerenityBuilder {
        SerenityBuilder::new()
    }

    /// Compiles `graph`: rewrites (per mode), schedules, and plans memory.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures ([`ScheduleError`]) and graph errors.
    pub fn compile(&self, graph: &Graph) -> Result<CompiledSchedule, ScheduleError> {
        let started = Instant::now();
        let baseline_peak_bytes = crate::baseline::kahn(graph)?.peak_bytes;

        let (original_schedule, original_partition, original_stats) = self.schedule_one(graph)?;

        let mut chosen_graph = graph.clone();
        let mut chosen = original_schedule;
        let mut chosen_partition = original_partition;
        let mut stats = original_stats;
        let mut rewrites = Vec::new();

        if self.config.rewrite != RewriteMode::Off {
            let outcome = Rewriter::standard().rewrite(graph);
            if outcome.changed() {
                let (rw_schedule, rw_partition, rw_stats) = self.schedule_one(&outcome.graph)?;
                let take_rewrite = match self.config.rewrite {
                    RewriteMode::Always => true,
                    RewriteMode::IfBeneficial => rw_schedule.peak_bytes < chosen.peak_bytes,
                    RewriteMode::Off => false,
                };
                stats.states += rw_stats.states;
                stats.transitions += rw_stats.transitions;
                stats.pruned += rw_stats.pruned;
                if take_rewrite {
                    chosen_graph = outcome.graph;
                    chosen = rw_schedule;
                    chosen_partition = rw_partition;
                    rewrites = outcome.applied;
                }
            }
        }

        // Among the schedules attaining the optimal peak, a run-to-completion
        // order (`canon::stackify`) often allocates more tightly — but not
        // always, so when an allocator is configured both candidates are
        // planned and the smaller arena wins at identical live peak.
        let canonical = crate::canon::stackify(&chosen_graph, chosen.peak_bytes)
            .and_then(|order| Schedule::from_order(&chosen_graph, order).ok());

        let mut arena = None;
        if let Some(strategy) = self.config.allocator {
            let plan_for = |schedule: &Schedule| {
                serenity_allocator::plan(&chosen_graph, &schedule.order, strategy).map_err(
                    |e| match e {
                        serenity_allocator::AllocError::Graph(g) => ScheduleError::Graph(g),
                        other => ScheduleError::Graph(serenity_ir::GraphError::InvalidOrder {
                            detail: other.to_string(),
                        }),
                    },
                )
            };
            let mut best = plan_for(&chosen)?;
            if let Some(candidate) = canonical {
                let candidate_plan = plan_for(&candidate)?;
                if candidate_plan.arena_bytes < best.arena_bytes {
                    chosen = candidate;
                    best = candidate_plan;
                }
            }
            arena = Some(best);
        } else if let Some(candidate) = canonical {
            debug_assert!(candidate.peak_bytes <= chosen.peak_bytes);
            chosen = candidate;
        }

        let compile_time = started.elapsed();
        stats.duration = compile_time;
        Ok(CompiledSchedule {
            peak_bytes: chosen.peak_bytes,
            graph: chosen_graph,
            schedule: chosen,
            arena,
            baseline_peak_bytes,
            rewrites,
            partition: chosen_partition,
            stats,
            compile_time,
        })
    }

    fn schedule_one(
        &self,
        graph: &Graph,
    ) -> Result<(Schedule, PartitionSummary, ScheduleStats), ScheduleError> {
        if self.config.divide {
            let outcome = DivideAndConquer::new()
                .segment_scheduler(self.config.segment_scheduler.clone())
                .schedule(graph)?;
            Ok((outcome.schedule, outcome.partition, outcome.total_stats))
        } else {
            let (schedule, stats) = match &self.config.segment_scheduler {
                SegmentScheduler::Dp(config) => {
                    let s = crate::dp::DpScheduler::with_config(config.clone()).schedule(graph)?;
                    (s.schedule, s.stats)
                }
                SegmentScheduler::Adaptive(config) => {
                    let o = crate::budget::AdaptiveSoftBudget::with_config(config.clone())
                        .search(graph)?;
                    (o.schedule, o.total_stats)
                }
            };
            let partition = PartitionSummary {
                total_nodes: graph.len(),
                segment_sizes: vec![graph.len()],
                cut_count: 0,
            };
            Ok((schedule, partition, stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn concat_cell() -> Graph {
        let mut b = GraphBuilder::new("cell");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let b1 = b.conv1x1(x, 8).unwrap();
        let b2 = b.conv1x1(x, 8).unwrap();
        let b3 = b.conv1x1(x, 8).unwrap();
        let cat = b.concat(&[b1, b2, b3]).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    #[test]
    fn full_pipeline_beats_baseline() {
        let g = concat_cell();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes);
        assert!(compiled.reduction_factor() >= 1.0);
        let arena = compiled.arena.expect("allocator enabled by default");
        arena.validate().unwrap();
        assert!(arena.arena_bytes >= compiled.peak_bytes);
    }

    #[test]
    fn rewriting_improves_this_cell() {
        let g = concat_cell();
        let without = Serenity::builder().rewrite(RewriteMode::Off).build().compile(&g).unwrap();
        let with =
            Serenity::builder().rewrite(RewriteMode::IfBeneficial).build().compile(&g).unwrap();
        assert!(with.peak_bytes < without.peak_bytes);
        assert!(!with.rewrites.is_empty());
        assert!(with.graph.len() > g.len());
    }

    #[test]
    fn if_beneficial_never_hurts() {
        // A plain chain: rewriting finds nothing, graph stays as-is.
        let mut b = GraphBuilder::new("plain");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let y = b.conv(x, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        let g = b.finish();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert!(compiled.rewrites.is_empty());
        assert_eq!(compiled.graph, g);
    }

    #[test]
    fn allocator_can_be_disabled() {
        let g = concat_cell();
        let compiled = Serenity::builder().allocator(None).build().compile(&g).unwrap();
        assert!(compiled.arena.is_none());
    }

    #[test]
    fn no_divide_matches_divide_on_peak() {
        let g = concat_cell();
        let divided = Serenity::builder().build().compile(&g).unwrap();
        let whole = Serenity::builder().divide_and_conquer(false).build().compile(&g).unwrap();
        assert_eq!(divided.peak_bytes, whole.peak_bytes);
    }

    #[test]
    fn schedule_covers_all_nodes() {
        let g = concat_cell();
        let compiled = Serenity::builder().build().compile(&g).unwrap();
        assert_eq!(compiled.schedule.order.len(), compiled.graph.len());
        assert!(serenity_ir::topo::is_order(&compiled.graph, &compiled.schedule.order));
    }
}
