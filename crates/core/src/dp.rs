//! The dynamic-programming scheduler of §3.1 (Algorithm 1), built on a
//! zero-allocation-per-transition frontier engine.
//!
//! # How it works
//!
//! A recursive topological ordering repeatedly picks a node from the
//! *zero-indegree set* `z` (nodes whose predecessors have all been scheduled).
//! The paper's key insight (Figure 5) is that many partial schedules share the
//! same `z`, and `z` is a *complete signature* of a partial schedule: the set
//! of unscheduled nodes is exactly the upward closure of `z`, so two prefixes
//! with equal `z` have scheduled the same nodes — and therefore hold exactly
//! the same set of live tensors, i.e. the same running footprint `µ`. Only
//! the *peak* `µ_peak` differs between them, so keeping the single
//! minimum-peak state per signature preserves optimality (Theorem 1,
//! Appendix C).
//!
//! The scheduler sweeps search steps `i = 0..|V|`; step `i` holds one state
//! per distinct signature reachable after scheduling `i` nodes. Scheduling a
//! node `u` allocates its output, raises the peak, and frees every
//! predecessor whose last consumer has now run (Figure 6). The memo-table
//! update keeps the smaller `µ_peak` per signature (Algorithm 1, line 21).
//!
//! # The frontier engine
//!
//! Frontiers reach tens of thousands of signatures per step on real
//! irregularly wired networks, so the engine is built around three ideas:
//!
//! * **Interned signatures in step arenas.** A state's `z` and scheduled
//!   bitsets live as fixed-width word slices inside a per-step
//!   `StepArena` word pool — one allocation per step, not two `Vec<u64>`s
//!   per state. Transitions build the successor signature in a reused
//!   scratch buffer; words are copied into the pool only when a signature
//!   turns out to be new. The steady-state hot loop performs no heap
//!   allocation per transition.
//! * **Incremental Zobrist hashing.** Each state carries the 64-bit XOR of
//!   its members' [`ZobristTable`] keys, updated in O(1) as nodes enter and
//!   leave `z`. The memo table (`SigIndex`) is an open-addressing index
//!   keyed by that pre-computed hash, so lookups never rehash a signature's
//!   words; hash hits are confirmed by word comparison, keeping the memo
//!   exact under (astronomically rare) Zobrist collisions.
//! * **Arena compaction.** Once a step is expanded, its full signatures are
//!   no longer needed — only the `(parent, node, peak)` backtrack records
//!   survive (16 bytes per state), and the word pool is dropped. Peak search
//!   memory is O(frontier × words) instead of O(steps × states × words);
//!   [`ScheduleStats::peak_memo_bytes`] reports the measured high-water
//!   mark.
//!
//! The allocate/free/ready queries run through [`CostModel`]'s precomputed
//! adjacency bitmasks: "all predecessors scheduled" and "last consumer ran"
//! are word-level subset tests rather than edge-list scans.
//!
//! Two §3.2 accelerations are integrated here rather than layered on top:
//!
//! * **Soft-budget pruning** — transitions whose `µ_peak` exceeds the budget
//!   τ are discarded; with τ ≥ µ* the optimum survives (Figure 8(a)).
//! * **Per-step timeout** — if one search step exceeds `T`, the run aborts
//!   with [`ScheduleError::Timeout`], the signal Algorithm 2's meta-search
//!   reacts to.
//!
//! Frontier expansion optionally fans out across threads (`threads > 1`):
//! workers bucket candidates by signature hash into shards, shards are
//! merged in parallel (a signature lands in exactly one shard), and the
//! merged arena is re-ordered by first-occurrence so the result — peaks,
//! representatives, and the reconstructed order — is identical to a serial
//! run.

use std::time::{Duration, Instant};

use serenity_ir::mem::{CostModel, FootprintTracker};
use serenity_ir::set::wordset;
use serenity_ir::{Graph, GraphError, NodeId, NodeSet, ZobristTable};

use crate::backend::{BoundHandle, CompileContext};
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Why a transition was discarded rather than merged into the next arena.
#[derive(Debug, Clone, Copy)]
enum Pruned {
    /// The peak exceeded the soft budget τ (§3.2 pruning).
    Budget,
    /// The peak provably loses to the shared
    /// [`IncumbentBound`](crate::backend::IncumbentBound) — branch-and-bound.
    Bound,
}

/// Configuration of a [`DpScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpConfig {
    /// Soft budget τ in bytes: states whose peak exceeds it are pruned.
    /// `None` disables pruning (pure Algorithm 1).
    pub budget: Option<u64>,
    /// Per-search-step time limit `T` (Algorithm 2's hyper-parameter).
    pub step_timeout: Option<Duration>,
    /// Worker threads for frontier expansion (1 = serial).
    pub threads: usize,
    /// Upper bound on memoized states per step; exceeding it aborts with
    /// [`ScheduleError::Timeout`]. A safety valve for exploding frontiers.
    pub max_states: Option<usize>,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig { budget: None, step_timeout: None, threads: 1, max_states: None }
    }
}

/// Result of a successful DP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpSolution {
    /// The footprint-optimal schedule (within the budget, if one was set).
    pub schedule: Schedule,
    /// Search-effort counters.
    pub stats: ScheduleStats,
}

/// The dynamic-programming scheduler (Algorithm 1 with §3.2 pruning).
///
/// # Example
///
/// ```
/// use serenity_core::dp::DpScheduler;
/// use serenity_ir::{Graph, topo, mem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("g");
/// let a = g.add_opaque("a", 10, &[])?;
/// let b = g.add_opaque("b", 100, &[a])?;
/// let c = g.add_opaque("c", 10, &[a])?;
/// let d = g.add_opaque("d", 1, &[c])?;
/// let e = g.add_opaque("e", 10, &[b, d])?;
/// g.mark_output(e);
///
/// let solution = DpScheduler::new().schedule(&g)?;
/// let kahn_peak = mem::peak_bytes(&g, &topo::kahn(&g))?;
/// assert!(solution.schedule.peak_bytes <= kahn_peak);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpScheduler {
    config: DpConfig,
}

/// Fixed-size per-state metadata; the signature words live in the arena
/// pool.
#[derive(Debug, Clone, Copy)]
struct StateMeta {
    /// Zobrist hash of the `z` signature (XOR of member keys).
    hash: u64,
    /// Running footprint µ — a function of the signature alone.
    mu: u64,
    /// Peak footprint µ_peak of the best prefix reaching this signature.
    peak: u64,
    /// Index of the parent state in the previous step's arena.
    parent: u32,
    /// Node scheduled to reach this state from the parent.
    node: NodeId,
}

impl StateMeta {
    /// Generation-order key of the transition that produced this candidate:
    /// candidates are generated in ascending `(parent, node)` order, so this
    /// key totally orders them exactly as a serial sweep visits them.
    fn transition_key(&self) -> u64 {
        ((self.parent as u64) << 32) | self.node.index() as u64
    }
}

/// One search step's states: fixed-size metadata plus a flat word pool
/// holding each state's `z` and scheduled bitsets back to back.
#[derive(Debug)]
struct StepArena {
    /// Words per bitset (⌈|V|/64⌉).
    words: usize,
    /// `2 * words` pool words per state: `z` first, then `scheduled`.
    pool: Vec<u64>,
    meta: Vec<StateMeta>,
    /// Transition key of the *first* candidate that created each state —
    /// better-peak replacements keep it, preserving serial insertion order.
    first_key: Vec<u64>,
}

impl StepArena {
    fn new(words: usize) -> Self {
        StepArena { words, pool: Vec::new(), meta: Vec::new(), first_key: Vec::new() }
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn z(&self, i: usize) -> &[u64] {
        let at = i * 2 * self.words;
        &self.pool[at..at + self.words]
    }

    /// The state's `(z, scheduled)` word slices.
    fn sets(&self, i: usize) -> (&[u64], &[u64]) {
        let at = i * 2 * self.words;
        self.pool[at..at + 2 * self.words].split_at(self.words)
    }

    fn push(&mut self, z: &[u64], scheduled: &[u64], meta: StateMeta) -> u32 {
        debug_assert_eq!(z.len(), self.words);
        debug_assert_eq!(scheduled.len(), self.words);
        let at = self.meta.len() as u32;
        self.pool.extend_from_slice(z);
        self.pool.extend_from_slice(scheduled);
        self.first_key.push(meta.transition_key());
        self.meta.push(meta);
        at
    }

    /// Bytes of live signature storage held by this arena.
    fn pool_bytes(&self) -> u64 {
        (self.pool.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Reorders the arena into the canonical per-step layout: ascending
    /// `(hash, z)` — a total order on signatures, since the Zobrist hash is
    /// disambiguated by the full signature words. Expansion visits states in
    /// arena order and equal-peak merges keep the first arrival, so a
    /// canonical layout makes every tie-break a function of the signature
    /// set alone — pruning a state can then never reshuffle the survivors
    /// and change which equal-peak schedule the search returns.
    fn sort_canonical(&mut self) {
        let mut order: Vec<u32> = (0..self.meta.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (ma, mb) = (&self.meta[a as usize], &self.meta[b as usize]);
            ma.hash.cmp(&mb.hash).then_with(|| self.z(a as usize).cmp(self.z(b as usize)))
        });
        let mut pool = Vec::with_capacity(self.pool.len());
        let mut meta = Vec::with_capacity(self.meta.len());
        let mut first_key = Vec::with_capacity(self.first_key.len());
        for &i in &order {
            let at = i as usize * 2 * self.words;
            pool.extend_from_slice(&self.pool[at..at + 2 * self.words]);
            meta.push(self.meta[i as usize]);
            first_key.push(self.first_key[i as usize]);
        }
        self.pool = pool;
        self.meta = meta;
        self.first_key = first_key;
    }

    /// Shrinks the arena to its backtrack records, dropping the signature
    /// pool (the compaction step: completed steps only need the parent
    /// chain).
    fn into_back_records(self) -> Vec<BackRec> {
        self.meta
            .into_iter()
            .map(|m| BackRec { parent: m.parent, node: m.node, peak: m.peak })
            .collect()
    }
}

/// Compact backtrack record of a completed step's state.
#[derive(Debug, Clone, Copy)]
struct BackRec {
    parent: u32,
    node: NodeId,
    /// Peak of the best prefix reaching the state; kept for diagnostics and
    /// monotonicity asserts, not needed for reconstruction.
    #[allow(dead_code)]
    peak: u64,
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressing memo index over an arena's states, keyed by the
/// pre-computed Zobrist hash — lookups never rehash signature words.
#[derive(Debug)]
struct SigIndex {
    /// Power-of-two slot array holding arena indices.
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

impl SigIndex {
    fn with_capacity(states: usize) -> Self {
        let cap = (states.max(8) * 2).next_power_of_two();
        SigIndex { slots: vec![EMPTY_SLOT; cap], mask: cap - 1, len: 0 }
    }

    /// Re-inserts every arena state into a table twice the size (hashes are
    /// carried in the metadata, so no signature is rehashed).
    fn grow(&mut self, arena: &StepArena) {
        let cap = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        self.mask = cap - 1;
        for (i, meta) in arena.meta.iter().enumerate() {
            let mut pos = (meta.hash as usize) & self.mask;
            while self.slots[pos] != EMPTY_SLOT {
                pos = (pos + 1) & self.mask;
            }
            self.slots[pos] = i as u32;
        }
    }
}

/// Inserts a candidate into the next-step arena, keeping the minimum-peak
/// state per signature (Algorithm 1, lines 21-23). Ties keep the earlier
/// candidate in transition order, matching a serial sweep.
fn merge_candidate(
    arena: &mut StepArena,
    index: &mut SigIndex,
    z: &[u64],
    scheduled: &[u64],
    meta: StateMeta,
) {
    let mut pos = (meta.hash as usize) & index.mask;
    loop {
        let slot = index.slots[pos];
        if slot == EMPTY_SLOT {
            let at = arena.push(z, scheduled, meta);
            index.slots[pos] = at;
            index.len += 1;
            if index.len * 4 >= index.slots.len() * 3 {
                index.grow(arena);
            }
            return;
        }
        let at = slot as usize;
        // Hash hit: confirm content equality so Zobrist collisions cannot
        // merge distinct signatures (exactness over probabilism).
        if arena.meta[at].hash == meta.hash && arena.z(at) == z {
            let existing = &mut arena.meta[at];
            // Same signature ⇒ same scheduled set ⇒ same live set ⇒ same µ.
            debug_assert_eq!(existing.mu, meta.mu, "µ must be a function of the signature");
            if meta.peak < existing.peak {
                *existing = meta;
            }
            return;
        }
        pos = (pos + 1) & index.mask;
    }
}

/// Which shard a signature hash belongs to.
///
/// Uses high hash bits: [`SigIndex`] probes from the *low* bits, so deriving
/// the shard from them too would leave every hash within a shard aliased to
/// the same initial probe residue, clustering the linear probes.
#[inline]
fn shard_of(hash: u64, shards: usize) -> usize {
    (hash >> 48) as usize & (shards - 1)
}

/// The largest running peak that can still win against the installed
/// incumbent bound (`u64::MAX` when no bound is installed — prunes nothing).
#[inline]
fn max_viable_of(bound: Option<&BoundHandle>) -> u64 {
    bound.map_or(u64::MAX, BoundHandle::max_viable_peak)
}

const ROOT: u32 = u32::MAX;
/// Frontier size beyond which expansion is parallelized.
const PARALLEL_THRESHOLD: usize = 192;
/// Transitions between deadline checks.
const TIMEOUT_CHECK_MASK: u64 = 0x3FF;

impl DpScheduler {
    /// Creates a scheduler with the default configuration (no budget, no
    /// timeout, serial).
    pub fn new() -> Self {
        DpScheduler::default()
    }

    /// Creates a scheduler from an explicit configuration.
    pub fn with_config(config: DpConfig) -> Self {
        DpScheduler { config }
    }

    /// Sets the soft budget τ in bytes.
    pub fn budget(mut self, budget: u64) -> Self {
        self.config.budget = Some(budget);
        self
    }

    /// Sets the per-search-step time limit `T`.
    pub fn step_timeout(mut self, limit: Duration) -> Self {
        self.config.step_timeout = Some(limit);
        self
    }

    /// Sets the number of worker threads for frontier expansion.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.config.threads = threads;
        self
    }

    /// Caps the number of memoized states per step.
    pub fn max_states(mut self, max: usize) -> Self {
        self.config.max_states = Some(max);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Finds the minimum-peak-footprint schedule of `graph`.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoSolution`] if a soft budget is set and every
    ///   schedule exceeds it.
    /// * [`ScheduleError::Timeout`] if a search step exceeds the configured
    ///   step timeout or state cap.
    /// * [`ScheduleError::Graph`] if the graph is malformed.
    pub fn schedule(&self, graph: &Graph) -> Result<DpSolution, ScheduleError> {
        self.schedule_with_prefix(graph, &[])
    }

    /// Like [`DpScheduler::schedule`], but with the nodes of `prefix` pinned
    /// to the front of the schedule, in the given order.
    ///
    /// Divide-and-conquer uses this to pre-allocate the boundary tensor of a
    /// segment: the cut tensor is live before the segment starts, so its
    /// placeholder input must be "scheduled" at step 0 for every explored
    /// state to account for its bytes.
    ///
    /// # Errors
    ///
    /// As [`DpScheduler::schedule`]; additionally
    /// [`ScheduleError::Graph`]`(`[`GraphError::InvalidOrder`]`)` if `prefix`
    /// is not a schedulable sequence.
    pub fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
    ) -> Result<DpSolution, ScheduleError> {
        self.schedule_with_prefix_ctx(graph, prefix, &CompileContext::unconstrained())
    }

    /// Like [`DpScheduler::schedule_with_prefix`], but governed by a
    /// [`CompileContext`]: the context's cancellation flag and wall-clock
    /// deadline are polled inside the frontier-expansion inner loop (every
    /// few hundred transitions), aborting with
    /// [`ScheduleError::Cancelled`] / [`ScheduleError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// As [`DpScheduler::schedule_with_prefix`], plus the context aborts.
    pub fn schedule_with_prefix_ctx(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<DpSolution, ScheduleError> {
        let started = Instant::now();
        ctx.check()?;
        let n = graph.len();
        if n == 0 {
            return Ok(DpSolution {
                schedule: Schedule { order: Vec::new(), peak_bytes: 0 },
                stats: ScheduleStats::default(),
            });
        }

        let cost = CostModel::new(graph);
        let zobrist = ZobristTable::new(n);
        let words = n.div_ceil(64);
        let mut frontier = self.root_arena(graph, &cost, &zobrist, words, prefix)?;
        if let Some(budget) = self.config.budget {
            if frontier.meta[0].peak > budget {
                return Err(ScheduleError::NoSolution { budget });
            }
        }
        if let Some(bound) = ctx.bound() {
            if frontier.meta[0].peak > bound.max_viable_peak() {
                return Err(ScheduleError::BoundBeaten { bound: bound.beaten_by() });
            }
        }

        let mut stats = ScheduleStats { states: 1, ..ScheduleStats::default() };
        stats.peak_memo_bytes = frontier.pool_bytes();
        // Compacted backtrack records of completed steps; index k holds the
        // arena of step k (after k transitions past the prefix).
        let mut back: Vec<Vec<BackRec>> = Vec::new();
        let remaining = n - prefix.len();

        for step in 0..remaining {
            let step_started = Instant::now();
            let next = if self.config.threads > 1 && frontier.len() >= PARALLEL_THRESHOLD {
                self.expand_parallel(
                    &cost,
                    &zobrist,
                    &frontier,
                    step,
                    step_started,
                    &mut stats,
                    ctx,
                )?
            } else {
                self.expand_serial(&cost, &zobrist, &frontier, step, step_started, &mut stats, ctx)?
            };
            if next.len() == 0 {
                let budget = self.config.budget.unwrap_or(u64::MAX);
                // Discriminate the two pruning regimes: when the incumbent
                // bound is strictly tighter than τ, every budget-pruned state
                // was also bound-prunable, so the emptiness is a race loss —
                // without the bound a τ-feasible schedule may still exist.
                // Sound under a monotonically tightening bound.
                if let Some(bound) = ctx.bound() {
                    if bound.max_viable_peak() < budget {
                        return Err(ScheduleError::BoundBeaten { bound: bound.beaten_by() });
                    }
                }
                return Err(ScheduleError::NoSolution { budget });
            }
            stats.states += next.len() as u64;
            stats.steps = step + 1;
            stats.peak_memo_bytes =
                stats.peak_memo_bytes.max(frontier.pool_bytes() + next.pool_bytes());
            ctx.check_memory_budget(stats.peak_memo_bytes)?;
            // Compaction: the expanded step only needs its parent chain.
            back.push(frontier.into_back_records());
            frontier = next;
            // Canonicalize the frontier layout before it is expanded.
            // Equal-peak merge ties at the next step are broken by transition
            // order — (parent arena position, node) — so the positions must
            // be a function of the surviving signature *set*, never of
            // insertion history. Without this, an incumbent-bound prune that
            // removes a signature's first (high-peak) arrival shifts the
            // survivor's slot, flips downstream ties, and a bounded run
            // returns a different equal-peak schedule than an unbounded one
            // — breaking the raced ≡ serial portfolio invariant.
            frontier.sort_canonical();
        }

        // All nodes scheduled: the final arena holds exactly one state with
        // an empty signature (Algorithm 1, line 27).
        debug_assert_eq!(frontier.len(), 1, "final signature must be unique");
        let best = frontier.meta.iter().min_by_key(|m| m.peak).expect("final arena is non-empty");

        let mut order = Vec::with_capacity(n);
        if remaining > 0 {
            order.push(best.node);
            let mut parent = best.parent;
            // Walk levels remaining-1 .. 1; back[0] is the root (dummy node).
            for recs in back[1..].iter().rev() {
                let rec = recs[parent as usize];
                order.push(rec.node);
                parent = rec.parent;
            }
        }
        order.extend(prefix.iter().rev());
        order.reverse();

        stats.duration = started.elapsed();
        let schedule = Schedule { order, peak_bytes: best.peak };
        debug_assert_eq!(
            serenity_ir::mem::peak_bytes(graph, &schedule.order).expect("valid order"),
            schedule.peak_bytes,
            "DP peak accounting must agree with the reference profiler"
        );
        Ok(DpSolution { schedule, stats })
    }

    fn root_arena(
        &self,
        graph: &Graph,
        cost: &CostModel<'_>,
        zobrist: &ZobristTable,
        words: usize,
        prefix: &[NodeId],
    ) -> Result<StepArena, ScheduleError> {
        let mut scheduled = NodeSet::with_capacity(graph.len());
        let mut tracker = FootprintTracker::new(graph);
        for (i, &u) in prefix.iter().enumerate() {
            if graph.get(u).is_none() {
                return Err(GraphError::UnknownNode(u).into());
            }
            let ready = cost.ready(&scheduled, u);
            if scheduled.contains(u) || !ready {
                return Err(GraphError::InvalidOrder {
                    detail: format!("prefix node {u} at position {i} is not schedulable"),
                }
                .into());
            }
            scheduled.insert(u);
            tracker.schedule(u);
        }
        let mut z = NodeSet::with_capacity(graph.len());
        for u in graph.node_ids() {
            if !scheduled.contains(u) && cost.ready(&scheduled, u) {
                z.insert(u);
            }
        }
        let mut arena = StepArena::new(words);
        let mut z_words = vec![0u64; words];
        let mut s_words = vec![0u64; words];
        z_words[..z.as_words().len()].copy_from_slice(z.as_words());
        s_words[..scheduled.as_words().len()].copy_from_slice(scheduled.as_words());
        arena.push(
            &z_words,
            &s_words,
            StateMeta {
                hash: zobrist.hash_set(&z),
                mu: tracker.current_bytes(),
                peak: tracker.peak_bytes(),
                parent: ROOT,
                node: NodeId::from_index(0),
            },
        );
        Ok(arena)
    }

    /// Applies the Figure 6 step for every `(state, u ∈ z)` pair of the
    /// frontier, merging candidates into the next arena as they appear.
    #[allow(clippy::too_many_arguments)]
    fn expand_serial(
        &self,
        cost: &CostModel<'_>,
        zobrist: &ZobristTable,
        frontier: &StepArena,
        step: usize,
        step_started: Instant,
        stats: &mut ScheduleStats,
        ctx: &CompileContext,
    ) -> Result<StepArena, ScheduleError> {
        let words = frontier.words;
        let mut arena = StepArena::new(words);
        arena.pool.reserve(frontier.pool.len());
        let mut index = SigIndex::with_capacity(frontier.len());
        let mut scratch = vec![0u64; 2 * words];
        let bound = ctx.bound();
        let mut max_viable = max_viable_of(bound);
        let mut transitions = 0u64;
        let mut pruned = 0u64;
        let mut bound_pruned = 0u64;
        for si in 0..frontier.len() {
            let (z, scheduled) = frontier.sets(si);
            let meta = frontier.meta[si];
            for u in wordset::iter(z) {
                transitions += 1;
                if transitions & TIMEOUT_CHECK_MASK == 0 {
                    self.check_limits(step, step_started, arena.len(), ctx)?;
                    // The bound only tightens, so refreshing at the check
                    // cadence is sound; a stale value merely prunes less.
                    max_viable = max_viable_of(bound);
                }
                match self.transition(
                    cost,
                    zobrist,
                    z,
                    scheduled,
                    &meta,
                    si as u32,
                    u,
                    max_viable,
                    &mut scratch,
                ) {
                    Ok(candidate) => {
                        let (cz, cs) = scratch.split_at(words);
                        merge_candidate(&mut arena, &mut index, cz, cs, candidate);
                    }
                    Err(Pruned::Budget) => pruned += 1,
                    Err(Pruned::Bound) => bound_pruned += 1,
                }
            }
        }
        self.check_limits(step, step_started, arena.len(), ctx)?;
        stats.transitions += transitions;
        stats.pruned += pruned;
        stats.bound_pruned += bound_pruned;
        Ok(arena)
    }

    /// Parallel expansion with a sharded merge: workers bucket candidates by
    /// signature hash, each shard is merged independently (a signature lands
    /// in exactly one shard), and the shard arenas are stitched back in
    /// first-occurrence transition order — the exact arena a serial sweep
    /// would have produced.
    #[allow(clippy::too_many_arguments)]
    fn expand_parallel(
        &self,
        cost: &CostModel<'_>,
        zobrist: &ZobristTable,
        frontier: &StepArena,
        step: usize,
        step_started: Instant,
        stats: &mut ScheduleStats,
        ctx: &CompileContext,
    ) -> Result<StepArena, ScheduleError> {
        let words = frontier.words;
        let threads = self.config.threads.min(frontier.len());
        let shards = threads.next_power_of_two();
        let chunk_size = frontier.len().div_ceil(threads);

        // Phase 1: generate candidates, bucketed by hash shard. Blocks are
        // plain `StepArena`s holding the worker's candidates (duplicates and
        // all) in transition order; only phase 2 deduplicates.
        type ChunkResult = Result<(Vec<StepArena>, u64, u64, u64), ScheduleError>;
        let results: Vec<ChunkResult> = std::thread::scope(|scope| {
            let frontier = &frontier;
            let handles: Vec<_> = (0..threads)
                .map(|ci| {
                    let base = ci * chunk_size;
                    let end = ((ci + 1) * chunk_size).min(frontier.len());
                    scope.spawn(move || -> ChunkResult {
                        let mut blocks: Vec<StepArena> =
                            (0..shards).map(|_| StepArena::new(words)).collect();
                        let mut scratch = vec![0u64; 2 * words];
                        let bound = ctx.bound();
                        let mut max_viable = max_viable_of(bound);
                        let mut transitions = 0u64;
                        let mut pruned = 0u64;
                        let mut bound_pruned = 0u64;
                        let mut emitted = 0usize;
                        for si in base..end {
                            let (z, scheduled) = frontier.sets(si);
                            let meta = frontier.meta[si];
                            for u in wordset::iter(z) {
                                transitions += 1;
                                if transitions & TIMEOUT_CHECK_MASK == 0 {
                                    self.check_limits(step, step_started, emitted, ctx)?;
                                    max_viable = max_viable_of(bound);
                                }
                                match self.transition(
                                    cost,
                                    zobrist,
                                    z,
                                    scheduled,
                                    &meta,
                                    si as u32,
                                    u,
                                    max_viable,
                                    &mut scratch,
                                ) {
                                    Ok(candidate) => {
                                        let shard = shard_of(candidate.hash, shards);
                                        let (cz, cs) = scratch.split_at(words);
                                        blocks[shard].push(cz, cs, candidate);
                                        emitted += 1;
                                    }
                                    Err(Pruned::Budget) => pruned += 1,
                                    Err(Pruned::Bound) => bound_pruned += 1,
                                }
                            }
                        }
                        Ok((blocks, transitions, pruned, bound_pruned))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker does not panic")).collect()
        });

        let mut worker_blocks: Vec<Vec<StepArena>> = Vec::with_capacity(threads);
        let mut candidate_bytes = 0u64;
        for result in results {
            let (blocks, transitions, pruned, bound_pruned) = result?;
            stats.transitions += transitions;
            stats.pruned += pruned;
            stats.bound_pruned += bound_pruned;
            candidate_bytes += blocks.iter().map(StepArena::pool_bytes).sum::<u64>();
            worker_blocks.push(blocks);
        }
        ctx.check()?;

        // Phase 2: merge each shard independently, workers in chunk order so
        // candidates are seen in global transition order within the shard.
        let shard_arenas: Vec<StepArena> = std::thread::scope(|scope| {
            let worker_blocks = &worker_blocks;
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    scope.spawn(move || {
                        let total: usize = worker_blocks.iter().map(|b| b[shard].meta.len()).sum();
                        let mut arena = StepArena::new(words);
                        let mut index = SigIndex::with_capacity(total / 2 + 1);
                        for blocks in worker_blocks {
                            let block = &blocks[shard];
                            for (i, &meta) in block.meta.iter().enumerate() {
                                let (z, scheduled) = block.sets(i);
                                merge_candidate(&mut arena, &mut index, z, scheduled, meta);
                            }
                        }
                        arena
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("merger does not panic")).collect()
        });

        // Phase 3: stitch the shards back in first-occurrence order, making
        // the arena bit-identical to a serial expansion.
        let mut ordered: Vec<(u64, u32, u32)> = Vec::new();
        for (shard, arena) in shard_arenas.iter().enumerate() {
            for (i, &key) in arena.first_key.iter().enumerate() {
                ordered.push((key, shard as u32, i as u32));
            }
        }
        ordered.sort_unstable();
        let mut merged = StepArena::new(words);
        merged.pool.reserve(ordered.len() * 2 * words);
        for &(key, shard, i) in &ordered {
            let arena = &shard_arenas[shard as usize];
            let (z, scheduled) = arena.sets(i as usize);
            let at = merged.push(z, scheduled, arena.meta[i as usize]);
            merged.first_key[at as usize] = key;
        }
        // High-water mark of live signature storage: the stitched arena is
        // built while the frontier, the candidate blocks, and the shard
        // arenas are all still allocated.
        let shard_bytes = shard_arenas.iter().map(StepArena::pool_bytes).sum::<u64>();
        stats.peak_memo_bytes = stats
            .peak_memo_bytes
            .max(frontier.pool_bytes() + candidate_bytes + shard_bytes + merged.pool_bytes());
        ctx.check_memory_budget(stats.peak_memo_bytes)?;
        self.check_limits(step, step_started, merged.len(), ctx)?;
        Ok(merged)
    }

    /// Applies the Figure 6 step through the shared cost model: allocate `u`,
    /// update the peak, free dead predecessors, build the successor signature
    /// in `scratch` (`z'` then `scheduled'`), and fold `u` and the newly
    /// ready successors into the Zobrist hash. Returns the prune kind when
    /// the transition is discarded: running peaks are monotone along a
    /// schedule path, so a state whose peak already exceeds the soft budget
    /// (or provably loses to the incumbent bound's `max_viable` peak) can
    /// never recover.
    #[allow(clippy::too_many_arguments)]
    fn transition(
        &self,
        cost: &CostModel<'_>,
        zobrist: &ZobristTable,
        z: &[u64],
        scheduled: &[u64],
        meta: &StateMeta,
        parent: u32,
        u: NodeId,
        max_viable: u64,
        scratch: &mut [u64],
    ) -> Result<StateMeta, Pruned> {
        let mu_after_alloc = meta.mu + cost.alloc_bytes_words(scheduled, u);
        let peak = meta.peak.max(mu_after_alloc);
        if let Some(budget) = self.config.budget {
            if peak > budget {
                return Err(Pruned::Budget);
            }
        }
        if peak > max_viable {
            return Err(Pruned::Bound);
        }
        let mu = mu_after_alloc - cost.free_bytes_words(scheduled, u);
        let words = z.len();
        let (sz, ss) = scratch.split_at_mut(words);
        sz.copy_from_slice(z);
        ss.copy_from_slice(scheduled);
        wordset::remove(sz, u);
        wordset::insert(ss, u);
        let mut hash = meta.hash ^ zobrist.key(u);
        for &s in cost.graph().succs(u) {
            if cost.ready_words(ss, s) {
                wordset::insert(sz, s);
                hash ^= zobrist.key(s);
            }
        }
        Ok(StateMeta { hash, mu, peak, parent, node: u })
    }

    fn check_limits(
        &self,
        step: usize,
        step_started: Instant,
        states: usize,
        ctx: &CompileContext,
    ) -> Result<(), ScheduleError> {
        ctx.check()?;
        if let Some(limit) = self.config.step_timeout {
            let elapsed = step_started.elapsed();
            if elapsed > limit {
                return Err(ScheduleError::Timeout { step, elapsed });
            }
        }
        if let Some(max) = self.config.max_states {
            if states > max {
                return Err(ScheduleError::Timeout { step, elapsed: step_started.elapsed() });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::{mem, topo};

    fn branchy() -> Graph {
        // A graph where scheduling order matters: finishing the small branch
        // first retires its tensors before the big branch allocates.
        let mut g = Graph::new("branchy");
        let a = g.add_opaque("a", 10, &[]).unwrap();
        let s1 = g.add_opaque("s1", 10, &[a]).unwrap();
        let s2 = g.add_opaque("s2", 2, &[s1]).unwrap();
        let b1 = g.add_opaque("b1", 100, &[a]).unwrap();
        let sink = g.add_opaque("sink", 10, &[s2, b1]).unwrap();
        g.mark_output(sink);
        g
    }

    #[test]
    fn beats_or_matches_kahn() {
        let g = branchy();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        let kahn_peak = mem::peak_bytes(&g, &topo::kahn(&g)).unwrap();
        assert!(dp.schedule.peak_bytes <= kahn_peak);
        assert!(topo::is_order(&g, &dp.schedule.order));
    }

    #[test]
    fn single_node_graph() {
        let mut g = Graph::new("one");
        g.add_opaque("only", 7, &[]).unwrap();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.schedule.order.len(), 1);
        assert_eq!(dp.schedule.peak_bytes, 7);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = Graph::new("empty");
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert!(dp.schedule.is_empty());
    }

    #[test]
    fn chain_is_deterministic() {
        let mut g = Graph::new("chain");
        let a = g.add_opaque("a", 1, &[]).unwrap();
        let b = g.add_opaque("b", 2, &[a]).unwrap();
        let c = g.add_opaque("c", 3, &[b]).unwrap();
        g.mark_output(c);
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.schedule.order, vec![a, b, c]);
        assert_eq!(dp.schedule.peak_bytes, 5); // b(2)+c(3), a freed when b ran... a(1)+b(2)=3, then b(2)+c(3)=5
    }

    #[test]
    fn budget_at_optimum_succeeds() {
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let tight = DpScheduler::new().budget(optimal).schedule(&g).unwrap();
        assert_eq!(tight.schedule.peak_bytes, optimal);
    }

    #[test]
    fn budget_below_optimum_fails() {
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let err = DpScheduler::new().budget(optimal - 1).schedule(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::NoSolution { .. }));
    }

    #[test]
    fn pruning_reduces_transitions() {
        let g = serenity_ir::random_dag::independent_branches(8, 10);
        let free = DpScheduler::new().schedule(&g).unwrap();
        let tight = DpScheduler::new().budget(free.schedule.peak_bytes).schedule(&g).unwrap();
        assert!(tight.stats.transitions <= free.stats.transitions);
        assert!(tight.stats.pruned > 0 || tight.stats.transitions == free.stats.transitions);
    }

    #[test]
    fn prefix_is_respected() {
        let g = branchy();
        let b1 = g.node_ids().find(|&id| g.node(id).name == "b1").unwrap();
        let a = g.node_ids().find(|&id| g.node(id).name == "a").unwrap();
        let dp = DpScheduler::new().schedule_with_prefix(&g, &[a, b1]).unwrap();
        assert_eq!(&dp.schedule.order[..2], &[a, b1]);
        assert!(topo::is_order(&g, &dp.schedule.order));
    }

    #[test]
    fn invalid_prefix_is_rejected() {
        let g = branchy();
        let sink = *g.outputs().first().unwrap();
        let err = DpScheduler::new().schedule_with_prefix(&g, &[sink]).unwrap_err();
        assert!(matches!(err, ScheduleError::Graph(GraphError::InvalidOrder { .. })));
    }

    #[test]
    fn state_cap_triggers_timeout() {
        let g = serenity_ir::random_dag::independent_branches(16, 10);
        let err = DpScheduler::new().max_states(4).schedule(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::Timeout { .. }));
    }

    #[test]
    fn parallel_matches_serial() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let config = serenity_ir::random_dag::RandomDagConfig {
                nodes: 18,
                edge_prob: 0.15,
                ..Default::default()
            };
            let g = serenity_ir::random_dag::random_dag(&config, &mut rng);
            let serial = DpScheduler::new().schedule(&g).unwrap();
            let parallel = DpScheduler::new().threads(4).schedule(&g).unwrap();
            assert_eq!(serial.schedule.peak_bytes, parallel.schedule.peak_bytes);
            // The sharded merge re-orders by first occurrence, so parallel
            // runs reconstruct the *same* order, not just the same peak.
            assert_eq!(serial.schedule.order, parallel.schedule.order);
        }
    }

    #[test]
    fn sharded_merge_kicks_in_and_is_serial_equal() {
        // 12 independent branches: the frontier peaks at C(12,6) = 924
        // states, well past PARALLEL_THRESHOLD, so the sharded path runs.
        let g = serenity_ir::random_dag::independent_branches(12, 10);
        let serial = DpScheduler::new().schedule(&g).unwrap();
        let parallel = DpScheduler::new().threads(4).schedule(&g).unwrap();
        assert_eq!(serial.schedule.order, parallel.schedule.order);
        assert_eq!(serial.schedule.peak_bytes, parallel.schedule.peak_bytes);
        assert_eq!(serial.stats.states, parallel.stats.states);
        assert_eq!(serial.stats.transitions, parallel.stats.transitions);
    }

    #[test]
    fn stats_are_populated() {
        let g = branchy();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.stats.steps, g.len());
        assert!(dp.stats.transitions >= g.len() as u64);
        assert!(dp.stats.states >= g.len() as u64);
        assert!(dp.stats.peak_memo_bytes > 0);
    }

    /// `depth` stacked diamonds: a deep graph with a tiny frontier, the
    /// worst case for full-history retention.
    fn chain_of_diamonds(depth: usize) -> Graph {
        let mut g = Graph::new("diamonds");
        let mut prev = g.add_opaque("s", 8, &[]).unwrap();
        for i in 0..depth {
            let l = g.add_opaque(format!("l{i}"), 8, &[prev]).unwrap();
            let r = g.add_opaque(format!("r{i}"), 8, &[prev]).unwrap();
            prev = g.add_opaque(format!("j{i}"), 8, &[l, r]).unwrap();
        }
        g.mark_output(prev);
        g
    }

    #[test]
    fn completed_steps_do_not_retain_signatures() {
        let g = chain_of_diamonds(100);
        let dp = DpScheduler::new().schedule(&g).unwrap();
        let words = g.len().div_ceil(64) as u64;
        // Retaining every memoized state's two bitsets until reconstruction
        // would hold `states × 2 × words × 8` bytes at once; compaction keeps
        // only the live frontier's signatures (≤ 3 states per step here plus
        // the step being built), far below that.
        let full_retention = dp.stats.states * 2 * words * 8;
        assert!(
            dp.stats.peak_memo_bytes <= full_retention / 10,
            "peak memo {} vs full retention {}",
            dp.stats.peak_memo_bytes,
            full_retention
        );
        assert!(topo::is_order(&g, &dp.schedule.order));
    }

    #[test]
    fn weak_bound_seed_preserves_the_optimum() {
        use crate::backend::{BoundHandle, CompileContext};
        // A tie-losing seed at any peak ≥ µ* must leave the winning schedule
        // reachable: bound-pruned runs return the same order and peak.
        let g = branchy();
        let free = DpScheduler::new().schedule(&g).unwrap();
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_weak(free.schedule.peak_bytes)));
        let bounded = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
        assert_eq!(bounded.schedule.order, free.schedule.order);
        assert_eq!(bounded.schedule.peak_bytes, free.schedule.peak_bytes);
    }

    #[test]
    fn bound_pruning_cuts_transitions_at_identical_peaks() {
        use crate::backend::{BoundHandle, CompileContext};
        // branchy() has a losing path (big branch first) whose running peak
        // exceeds µ*, so a weak seed at µ* must prune it mid-schedule.
        let g = branchy();
        let free = DpScheduler::new().schedule(&g).unwrap();
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_weak(free.schedule.peak_bytes)));
        let bounded = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
        assert_eq!(bounded.schedule.peak_bytes, free.schedule.peak_bytes);
        assert_eq!(bounded.schedule.order, free.schedule.order);
        assert!(bounded.stats.bound_pruned > 0, "the losing branch must trip branch-and-bound");
        assert!(bounded.stats.transitions < free.stats.transitions);
        assert_eq!(bounded.stats.pruned, 0, "no τ budget was set");
    }

    #[test]
    fn bound_pruned_random_dags_keep_the_unpruned_peak() {
        use crate::backend::{BoundHandle, CompileContext};
        use rand::SeedableRng;
        // Property over random DAGs: seeding the bound with the optimal peak
        // (tie-losing) never changes the result, only the effort.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for _ in 0..8 {
            let config = serenity_ir::random_dag::RandomDagConfig {
                nodes: 16,
                edge_prob: 0.2,
                ..Default::default()
            };
            let g = serenity_ir::random_dag::random_dag(&config, &mut rng);
            let free = DpScheduler::new().schedule(&g).unwrap();
            let ctx = CompileContext::unconstrained()
                .with_bound(Some(BoundHandle::seeded_weak(free.schedule.peak_bytes)));
            let bounded = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
            assert_eq!(bounded.schedule.order, free.schedule.order);
            assert_eq!(bounded.schedule.peak_bytes, free.schedule.peak_bytes);
            assert!(bounded.stats.transitions <= free.stats.transitions);
        }
    }

    #[test]
    fn bound_pruning_never_flips_equal_peak_tie_breaks() {
        use crate::backend::{BoundHandle, CompileContext};
        use rand::SeedableRng;
        // Regression: without the canonical frontier sort, pruning a
        // signature's first (high-peak) arrival shifts the survivor's arena
        // slot; downstream equal-peak merge ties are broken by transition
        // order, so a bounded run would return a *different* equal-peak
        // schedule than the unbounded one. These exact DAGs flipped before
        // the sort was added.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for _ in 0..4 {
            let config = serenity_ir::random_dag::RandomDagConfig {
                nodes: 18,
                edge_prob: 0.2,
                ..Default::default()
            };
            let g = serenity_ir::random_dag::random_dag(&config, &mut rng);
            let free = DpScheduler::new().schedule(&g).unwrap();
            // A later-priority setter at µ* — exactly what a racing portfolio
            // member publishes — so ties survive and only worse states prune.
            let ctx = CompileContext::unconstrained()
                .with_bound(Some(BoundHandle::seeded_weak(free.schedule.peak_bytes)));
            let bounded = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
            assert_eq!(bounded.schedule.order, free.schedule.order);
            assert_eq!(bounded.schedule.peak_bytes, free.schedule.peak_bytes);
        }
    }

    #[test]
    fn strict_bound_at_optimum_is_beaten_not_no_solution() {
        use crate::backend::{BoundHandle, CompileContext};
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        // A tie-winning incumbent at µ*: even the optimum is a loss, and the
        // emptiness must be reported as a race loss, never NoSolution.
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_incumbent(optimal)));
        let err = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap_err();
        assert_eq!(err, ScheduleError::BoundBeaten { bound: optimal });
    }

    #[test]
    fn budget_tighter_than_bound_still_reports_no_solution() {
        use crate::backend::{BoundHandle, CompileContext};
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        // τ below µ* with a loose bound: the emptiness belongs to the budget.
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_weak(optimal + 1000)));
        let err = DpScheduler::new()
            .budget(optimal - 1)
            .schedule_with_prefix_ctx(&g, &[], &ctx)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoSolution { .. }));
    }

    #[test]
    fn parallel_bound_pruning_matches_serial() {
        use crate::backend::{BoundHandle, CompileContext};
        // Six two-node braids (entry → aᵢ → bᵢ → exit) with skewed sizes: the
        // frontier reaches 3⁶ = 729 states (past PARALLEL_THRESHOLD) and
        // orders that delay freeing the big aᵢ overshoot µ*, so the sharded
        // path runs with live bound pruning. A static seed makes the prune
        // decisions deterministic, so counts must match serial exactly.
        let mut g = Graph::new("braided");
        let entry = g.add_opaque("entry", 4, &[]).unwrap();
        let tails: Vec<_> = (0..6)
            .map(|i| {
                let a = g.add_opaque(format!("a{i}"), 10 + 17 * i as u64, &[entry]).unwrap();
                g.add_opaque(format!("b{i}"), 3 + 2 * i as u64, &[a]).unwrap()
            })
            .collect();
        let exit = g.add_opaque("exit", 2, &tails).unwrap();
        g.mark_output(exit);

        let free = DpScheduler::new().schedule(&g).unwrap();
        let ctx = CompileContext::unconstrained()
            .with_bound(Some(BoundHandle::seeded_weak(free.schedule.peak_bytes)));
        let serial = DpScheduler::new().schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
        let parallel =
            DpScheduler::new().threads(4).schedule_with_prefix_ctx(&g, &[], &ctx).unwrap();
        assert_eq!(serial.schedule.order, parallel.schedule.order);
        assert_eq!(serial.schedule.peak_bytes, free.schedule.peak_bytes);
        assert!(serial.stats.bound_pruned > 0, "skewed braids must trip branch-and-bound");
        assert_eq!(serial.stats.bound_pruned, parallel.stats.bound_pruned);
    }

    #[test]
    fn memo_high_water_mark_is_depth_independent() {
        // Doubling the depth multiplies the word width by ~2 (more nodes)
        // but must not multiply the high-water mark by the depth factor:
        // the frontier stays O(1) states wide.
        let shallow = DpScheduler::new().schedule(&chain_of_diamonds(60)).unwrap();
        let deep = DpScheduler::new().schedule(&chain_of_diamonds(120)).unwrap();
        assert!(
            deep.stats.peak_memo_bytes <= shallow.stats.peak_memo_bytes * 3,
            "deep {} vs shallow {}",
            deep.stats.peak_memo_bytes,
            shallow.stats.peak_memo_bytes
        );
    }
}
