//! The dynamic-programming scheduler of §3.1 (Algorithm 1).
//!
//! # How it works
//!
//! A recursive topological ordering repeatedly picks a node from the
//! *zero-indegree set* `z` (nodes whose predecessors have all been scheduled).
//! The paper's key insight (Figure 5) is that many partial schedules share the
//! same `z`, and `z` is a *complete signature* of a partial schedule: the set
//! of unscheduled nodes is exactly the upward closure of `z`, so two prefixes
//! with equal `z` have scheduled the same nodes — and therefore hold exactly
//! the same set of live tensors, i.e. the same running footprint `µ`. Only
//! the *peak* `µ_peak` differs between them, so keeping the single
//! minimum-peak state per signature preserves optimality (Theorem 1,
//! Appendix C).
//!
//! The scheduler sweeps search steps `i = 0..|V|`; step `i` holds one state
//! per distinct signature reachable after scheduling `i` nodes. Scheduling a
//! node `u` allocates its output, raises the peak, and frees every
//! predecessor whose last consumer has now run (Figure 6). The memo-table
//! update keeps the smaller `µ_peak` per signature (Algorithm 1, line 21).
//!
//! Two §3.2 accelerations are integrated here rather than layered on top:
//!
//! * **Soft-budget pruning** — transitions whose `µ_peak` exceeds the budget
//!   τ are discarded; with τ ≥ µ* the optimum survives (Figure 8(a)).
//! * **Per-step timeout** — if one search step exceeds `T`, the run aborts
//!   with [`ScheduleError::Timeout`], the signal Algorithm 2's meta-search
//!   reacts to.
//!
//! Frontier expansion optionally fans out across threads (`threads > 1`);
//! results are merged deterministically, so parallel runs return the same
//! peak as serial runs.

use std::time::{Duration, Instant};

use serenity_ir::fxhash::FxHashMap;
use serenity_ir::mem::{CostModel, FootprintTracker};
use serenity_ir::{Graph, GraphError, NodeId, NodeSet};

use crate::backend::CompileContext;
use crate::{Schedule, ScheduleError, ScheduleStats};

/// Configuration of a [`DpScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpConfig {
    /// Soft budget τ in bytes: states whose peak exceeds it are pruned.
    /// `None` disables pruning (pure Algorithm 1).
    pub budget: Option<u64>,
    /// Per-search-step time limit `T` (Algorithm 2's hyper-parameter).
    pub step_timeout: Option<Duration>,
    /// Worker threads for frontier expansion (1 = serial).
    pub threads: usize,
    /// Upper bound on memoized states per step; exceeding it aborts with
    /// [`ScheduleError::Timeout`]. A safety valve for exploding frontiers.
    pub max_states: Option<usize>,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig { budget: None, step_timeout: None, threads: 1, max_states: None }
    }
}

/// Result of a successful DP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpSolution {
    /// The footprint-optimal schedule (within the budget, if one was set).
    pub schedule: Schedule,
    /// Search-effort counters.
    pub stats: ScheduleStats,
}

/// The dynamic-programming scheduler (Algorithm 1 with §3.2 pruning).
///
/// # Example
///
/// ```
/// use serenity_core::dp::DpScheduler;
/// use serenity_ir::{Graph, topo, mem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("g");
/// let a = g.add_opaque("a", 10, &[])?;
/// let b = g.add_opaque("b", 100, &[a])?;
/// let c = g.add_opaque("c", 10, &[a])?;
/// let d = g.add_opaque("d", 1, &[c])?;
/// let e = g.add_opaque("e", 10, &[b, d])?;
/// g.mark_output(e);
///
/// let solution = DpScheduler::new().schedule(&g)?;
/// let kahn_peak = mem::peak_bytes(&g, &topo::kahn(&g))?;
/// assert!(solution.schedule.peak_bytes <= kahn_peak);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpScheduler {
    config: DpConfig,
}

/// One memoized state: the minimum-peak partial schedule for a signature.
#[derive(Debug, Clone)]
struct State {
    /// Zero-indegree set signature.
    z: NodeSet,
    /// Scheduled-node set (the downward closure complement of `↑z`; kept
    /// explicitly to make transitions O(deg) instead of O(V+E)).
    scheduled: NodeSet,
    /// Running footprint µ — a function of the signature alone.
    mu: u64,
    /// Peak footprint µ_peak of the best prefix reaching this signature.
    peak: u64,
    /// Index of the parent state in the previous step's arena.
    parent: u32,
    /// Node scheduled to reach this state from the parent.
    node: NodeId,
}

const ROOT: u32 = u32::MAX;
/// Frontier size beyond which expansion is parallelized.
const PARALLEL_THRESHOLD: usize = 192;
/// Transitions between deadline checks.
const TIMEOUT_CHECK_MASK: u64 = 0x3FF;

impl DpScheduler {
    /// Creates a scheduler with the default configuration (no budget, no
    /// timeout, serial).
    pub fn new() -> Self {
        DpScheduler::default()
    }

    /// Creates a scheduler from an explicit configuration.
    pub fn with_config(config: DpConfig) -> Self {
        DpScheduler { config }
    }

    /// Sets the soft budget τ in bytes.
    pub fn budget(mut self, budget: u64) -> Self {
        self.config.budget = Some(budget);
        self
    }

    /// Sets the per-search-step time limit `T`.
    pub fn step_timeout(mut self, limit: Duration) -> Self {
        self.config.step_timeout = Some(limit);
        self
    }

    /// Sets the number of worker threads for frontier expansion.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.config.threads = threads;
        self
    }

    /// Caps the number of memoized states per step.
    pub fn max_states(mut self, max: usize) -> Self {
        self.config.max_states = Some(max);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Finds the minimum-peak-footprint schedule of `graph`.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoSolution`] if a soft budget is set and every
    ///   schedule exceeds it.
    /// * [`ScheduleError::Timeout`] if a search step exceeds the configured
    ///   step timeout or state cap.
    /// * [`ScheduleError::Graph`] if the graph is malformed.
    pub fn schedule(&self, graph: &Graph) -> Result<DpSolution, ScheduleError> {
        self.schedule_with_prefix(graph, &[])
    }

    /// Like [`DpScheduler::schedule`], but with the nodes of `prefix` pinned
    /// to the front of the schedule, in the given order.
    ///
    /// Divide-and-conquer uses this to pre-allocate the boundary tensor of a
    /// segment: the cut tensor is live before the segment starts, so its
    /// placeholder input must be "scheduled" at step 0 for every explored
    /// state to account for its bytes.
    ///
    /// # Errors
    ///
    /// As [`DpScheduler::schedule`]; additionally
    /// [`ScheduleError::Graph`]`(`[`GraphError::InvalidOrder`]`)` if `prefix`
    /// is not a schedulable sequence.
    pub fn schedule_with_prefix(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
    ) -> Result<DpSolution, ScheduleError> {
        self.schedule_with_prefix_ctx(graph, prefix, &CompileContext::unconstrained())
    }

    /// Like [`DpScheduler::schedule_with_prefix`], but governed by a
    /// [`CompileContext`]: the context's cancellation flag and wall-clock
    /// deadline are polled inside the frontier-expansion inner loop (every
    /// few hundred transitions), aborting with
    /// [`ScheduleError::Cancelled`] / [`ScheduleError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// As [`DpScheduler::schedule_with_prefix`], plus the context aborts.
    pub fn schedule_with_prefix_ctx(
        &self,
        graph: &Graph,
        prefix: &[NodeId],
        ctx: &CompileContext,
    ) -> Result<DpSolution, ScheduleError> {
        let started = Instant::now();
        ctx.check()?;
        let n = graph.len();
        if n == 0 {
            return Ok(DpSolution {
                schedule: Schedule { order: Vec::new(), peak_bytes: 0 },
                stats: ScheduleStats::default(),
            });
        }

        let cost = CostModel::new(graph);
        let root = self.root_state(graph, prefix)?;
        if let Some(budget) = self.config.budget {
            if root.peak > budget {
                return Err(ScheduleError::NoSolution { budget });
            }
        }

        let mut stats = ScheduleStats { states: 1, ..ScheduleStats::default() };
        // Arena per search step; step 0 holds only the root.
        let mut arenas: Vec<Vec<State>> = vec![vec![root]];
        let remaining = n - prefix.len();

        for step in 0..remaining {
            let step_started = Instant::now();
            let frontier = arenas.last().expect("arena for current step exists");
            let next = if self.config.threads > 1 && frontier.len() >= PARALLEL_THRESHOLD {
                self.expand_parallel(&cost, frontier, step, step_started, &mut stats, ctx)?
            } else {
                self.expand_serial(&cost, frontier, step, step_started, &mut stats, ctx)?
            };
            if next.is_empty() {
                let budget = self.config.budget.unwrap_or(u64::MAX);
                return Err(ScheduleError::NoSolution { budget });
            }
            stats.states += next.len() as u64;
            stats.steps = step + 1;
            arenas.push(next);
        }

        // All nodes scheduled: the final arena holds exactly one state with
        // an empty signature (Algorithm 1, line 27).
        let last = arenas.last().expect("final arena exists");
        debug_assert_eq!(last.len(), 1, "final signature must be unique");
        let best = last.iter().enumerate().min_by_key(|(_, s)| s.peak).expect("non-empty");

        let mut order = Vec::with_capacity(n);
        let (mut arena_idx, mut state_idx) = (arenas.len() - 1, best.0 as u32);
        while arena_idx > 0 {
            let state = &arenas[arena_idx][state_idx as usize];
            order.push(state.node);
            state_idx = state.parent;
            arena_idx -= 1;
        }
        order.extend(prefix.iter().rev());
        order.reverse();

        stats.duration = started.elapsed();
        let schedule = Schedule { order, peak_bytes: best.1.peak };
        debug_assert_eq!(
            serenity_ir::mem::peak_bytes(graph, &schedule.order).expect("valid order"),
            schedule.peak_bytes,
            "DP peak accounting must agree with the reference profiler"
        );
        Ok(DpSolution { schedule, stats })
    }

    fn root_state(&self, graph: &Graph, prefix: &[NodeId]) -> Result<State, ScheduleError> {
        let mut scheduled = NodeSet::with_capacity(graph.len());
        let mut tracker = FootprintTracker::new(graph);
        for (i, &u) in prefix.iter().enumerate() {
            if graph.get(u).is_none() {
                return Err(GraphError::UnknownNode(u).into());
            }
            let ready = graph.preds(u).iter().all(|p| scheduled.contains(*p));
            if scheduled.contains(u) || !ready {
                return Err(GraphError::InvalidOrder {
                    detail: format!("prefix node {u} at position {i} is not schedulable"),
                }
                .into());
            }
            scheduled.insert(u);
            tracker.schedule(u);
        }
        let z = zero_indegree(graph, &scheduled);
        Ok(State {
            z,
            scheduled,
            mu: tracker.current_bytes(),
            peak: tracker.peak_bytes(),
            parent: ROOT,
            node: NodeId::from_index(0),
        })
    }

    fn expand_serial(
        &self,
        cost: &CostModel<'_>,
        frontier: &[State],
        step: usize,
        step_started: Instant,
        stats: &mut ScheduleStats,
        ctx: &CompileContext,
    ) -> Result<Vec<State>, ScheduleError> {
        let mut arena: Vec<State> = Vec::new();
        let mut index: FxHashMap<NodeSet, u32> = FxHashMap::default();
        let mut transitions = 0u64;
        let mut pruned = 0u64;
        for (si, state) in frontier.iter().enumerate() {
            for u in state.z.iter() {
                transitions += 1;
                if transitions & TIMEOUT_CHECK_MASK == 0 {
                    self.check_limits(step, step_started, arena.len(), ctx)?;
                }
                match self.transition(cost, state, si as u32, u) {
                    Some(candidate) => merge_candidate(&mut arena, &mut index, candidate),
                    None => pruned += 1,
                }
            }
        }
        self.check_limits(step, step_started, arena.len(), ctx)?;
        stats.transitions += transitions;
        stats.pruned += pruned;
        Ok(arena)
    }

    fn expand_parallel(
        &self,
        cost: &CostModel<'_>,
        frontier: &[State],
        step: usize,
        step_started: Instant,
        stats: &mut ScheduleStats,
        ctx: &CompileContext,
    ) -> Result<Vec<State>, ScheduleError> {
        let threads = self.config.threads.min(frontier.len());
        let chunk_size = frontier.len().div_ceil(threads);
        let chunks: Vec<&[State]> = frontier.chunks(chunk_size).collect();

        type ChunkResult = Result<(Vec<State>, u64, u64), ScheduleError>;
        let results: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(ci, chunk)| {
                    let base = (ci * chunk_size) as u32;
                    scope.spawn(move || -> ChunkResult {
                        let mut local: Vec<State> = Vec::new();
                        let mut transitions = 0u64;
                        let mut pruned = 0u64;
                        for (offset, state) in chunk.iter().enumerate() {
                            for u in state.z.iter() {
                                transitions += 1;
                                if transitions & TIMEOUT_CHECK_MASK == 0 {
                                    self.check_limits(step, step_started, local.len(), ctx)?;
                                }
                                match self.transition(cost, state, base + offset as u32, u) {
                                    Some(candidate) => local.push(candidate),
                                    None => pruned += 1,
                                }
                            }
                        }
                        Ok((local, transitions, pruned))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker does not panic")).collect()
        });

        // Deterministic merge in chunk order: identical outcome to serial.
        let mut arena: Vec<State> = Vec::new();
        let mut index: FxHashMap<NodeSet, u32> = FxHashMap::default();
        for result in results {
            let (candidates, transitions, pruned) = result?;
            stats.transitions += transitions;
            stats.pruned += pruned;
            for candidate in candidates {
                merge_candidate(&mut arena, &mut index, candidate);
            }
            self.check_limits(step, step_started, arena.len(), ctx)?;
        }
        Ok(arena)
    }

    /// Applies the Figure 6 step through the shared cost model: allocate `u`,
    /// update the peak, free dead predecessors, compute the successor
    /// signature. Returns `None` when the transition is pruned by the soft
    /// budget.
    fn transition(
        &self,
        cost: &CostModel<'_>,
        state: &State,
        parent: u32,
        u: NodeId,
    ) -> Option<State> {
        let graph = cost.graph();
        let mu_after_alloc = state.mu + cost.alloc_bytes(&state.scheduled, u);
        let peak = state.peak.max(mu_after_alloc);
        if let Some(budget) = self.config.budget {
            if peak > budget {
                return None;
            }
        }
        let mu = mu_after_alloc - cost.free_bytes(&state.scheduled, u);
        let mut scheduled = state.scheduled.clone();
        scheduled.insert(u);
        let mut z = state.z.clone();
        z.remove(u);
        for &s in graph.succs(u) {
            if graph.preds(s).iter().all(|p| scheduled.contains(*p)) {
                z.insert(s);
            }
        }
        Some(State { z, scheduled, mu, peak, parent, node: u })
    }

    fn check_limits(
        &self,
        step: usize,
        step_started: Instant,
        states: usize,
        ctx: &CompileContext,
    ) -> Result<(), ScheduleError> {
        ctx.check()?;
        if let Some(limit) = self.config.step_timeout {
            let elapsed = step_started.elapsed();
            if elapsed > limit {
                return Err(ScheduleError::Timeout { step, elapsed });
            }
        }
        if let Some(max) = self.config.max_states {
            if states > max {
                return Err(ScheduleError::Timeout { step, elapsed: step_started.elapsed() });
            }
        }
        Ok(())
    }
}

/// Inserts `candidate` into the next-step arena, keeping the minimum-peak
/// state per signature (Algorithm 1, lines 21-23).
fn merge_candidate(arena: &mut Vec<State>, index: &mut FxHashMap<NodeSet, u32>, candidate: State) {
    match index.get(&candidate.z) {
        Some(&at) => {
            let existing = &mut arena[at as usize];
            // Same signature ⇒ same scheduled set ⇒ same live set ⇒ same µ.
            debug_assert_eq!(existing.mu, candidate.mu, "µ must be a function of the signature");
            if candidate.peak < existing.peak {
                *existing = candidate;
            }
        }
        None => {
            index.insert(candidate.z.clone(), arena.len() as u32);
            arena.push(candidate);
        }
    }
}

fn zero_indegree(graph: &Graph, scheduled: &NodeSet) -> NodeSet {
    let mut z = NodeSet::with_capacity(graph.len());
    for u in graph.node_ids() {
        if !scheduled.contains(u) && graph.preds(u).iter().all(|p| scheduled.contains(*p)) {
            z.insert(u);
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::{mem, topo};

    fn branchy() -> Graph {
        // A graph where scheduling order matters: finishing the small branch
        // first retires its tensors before the big branch allocates.
        let mut g = Graph::new("branchy");
        let a = g.add_opaque("a", 10, &[]).unwrap();
        let s1 = g.add_opaque("s1", 10, &[a]).unwrap();
        let s2 = g.add_opaque("s2", 2, &[s1]).unwrap();
        let b1 = g.add_opaque("b1", 100, &[a]).unwrap();
        let sink = g.add_opaque("sink", 10, &[s2, b1]).unwrap();
        g.mark_output(sink);
        g
    }

    #[test]
    fn beats_or_matches_kahn() {
        let g = branchy();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        let kahn_peak = mem::peak_bytes(&g, &topo::kahn(&g)).unwrap();
        assert!(dp.schedule.peak_bytes <= kahn_peak);
        assert!(topo::is_order(&g, &dp.schedule.order));
    }

    #[test]
    fn single_node_graph() {
        let mut g = Graph::new("one");
        g.add_opaque("only", 7, &[]).unwrap();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.schedule.order.len(), 1);
        assert_eq!(dp.schedule.peak_bytes, 7);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = Graph::new("empty");
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert!(dp.schedule.is_empty());
    }

    #[test]
    fn chain_is_deterministic() {
        let mut g = Graph::new("chain");
        let a = g.add_opaque("a", 1, &[]).unwrap();
        let b = g.add_opaque("b", 2, &[a]).unwrap();
        let c = g.add_opaque("c", 3, &[b]).unwrap();
        g.mark_output(c);
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.schedule.order, vec![a, b, c]);
        assert_eq!(dp.schedule.peak_bytes, 5); // b(2)+c(3), a freed when b ran... a(1)+b(2)=3, then b(2)+c(3)=5
    }

    #[test]
    fn budget_at_optimum_succeeds() {
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let tight = DpScheduler::new().budget(optimal).schedule(&g).unwrap();
        assert_eq!(tight.schedule.peak_bytes, optimal);
    }

    #[test]
    fn budget_below_optimum_fails() {
        let g = branchy();
        let optimal = DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let err = DpScheduler::new().budget(optimal - 1).schedule(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::NoSolution { .. }));
    }

    #[test]
    fn pruning_reduces_transitions() {
        let g = serenity_ir::random_dag::independent_branches(8, 10);
        let free = DpScheduler::new().schedule(&g).unwrap();
        let tight = DpScheduler::new().budget(free.schedule.peak_bytes).schedule(&g).unwrap();
        assert!(tight.stats.transitions <= free.stats.transitions);
        assert!(tight.stats.pruned > 0 || tight.stats.transitions == free.stats.transitions);
    }

    #[test]
    fn prefix_is_respected() {
        let g = branchy();
        let b1 = g.node_ids().find(|&id| g.node(id).name == "b1").unwrap();
        let a = g.node_ids().find(|&id| g.node(id).name == "a").unwrap();
        let dp = DpScheduler::new().schedule_with_prefix(&g, &[a, b1]).unwrap();
        assert_eq!(&dp.schedule.order[..2], &[a, b1]);
        assert!(topo::is_order(&g, &dp.schedule.order));
    }

    #[test]
    fn invalid_prefix_is_rejected() {
        let g = branchy();
        let sink = *g.outputs().first().unwrap();
        let err = DpScheduler::new().schedule_with_prefix(&g, &[sink]).unwrap_err();
        assert!(matches!(err, ScheduleError::Graph(GraphError::InvalidOrder { .. })));
    }

    #[test]
    fn state_cap_triggers_timeout() {
        let g = serenity_ir::random_dag::independent_branches(16, 10);
        let err = DpScheduler::new().max_states(4).schedule(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::Timeout { .. }));
    }

    #[test]
    fn parallel_matches_serial() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let config = serenity_ir::random_dag::RandomDagConfig {
                nodes: 18,
                edge_prob: 0.15,
                ..Default::default()
            };
            let g = serenity_ir::random_dag::random_dag(&config, &mut rng);
            let serial = DpScheduler::new().schedule(&g).unwrap();
            let parallel = DpScheduler::new().threads(4).schedule(&g).unwrap();
            assert_eq!(serial.schedule.peak_bytes, parallel.schedule.peak_bytes);
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = branchy();
        let dp = DpScheduler::new().schedule(&g).unwrap();
        assert_eq!(dp.stats.steps, g.len());
        assert!(dp.stats.transitions >= g.len() as u64);
        assert!(dp.stats.states >= g.len() as u64);
    }
}
