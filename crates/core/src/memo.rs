//! The schedule memo: canonical-fingerprint → schedule cache shared across
//! rewrite-loop iterations.
//!
//! The iterative rewrite↔schedule search (see [`crate::rewrite::RewriteSearch`])
//! re-schedules a candidate graph after every identity rewrite, but a rewrite
//! is local: every divide-and-conquer segment outside the rewritten region is
//! structurally unchanged, and its optimal schedule is too. The memo keys
//! segment graphs by [`serenity_ir::fingerprint::fingerprint`] and replays the
//! stored order on a hit, so unchanged segments are never re-searched.
//!
//! Hits are exact, not probabilistic: fingerprints can collide, so every hash
//! hit is confirmed with [`serenity_ir::fingerprint::structural_eq`] *and* an
//! exact match of the pinned boundary prefix before the stored schedule is
//! replayed — a collision degrades to a miss, never to a wrong schedule, and
//! a schedule computed unpinned is never replayed into a pinned segment
//! (whose order must lead with the boundary placeholder) or vice versa. Replay is also deterministic: all backends are
//! deterministic functions of the (structural) graph, so a replayed schedule
//! is byte-identical to what a fresh search of the same backend would return,
//! and memoized runs stay bit-identical to memo-free runs.
//!
//! Entries are keyed by graph structure only, so a memo is only coherent for
//! a single backend configuration. [`RewriteSearch`](crate::rewrite::RewriteSearch)
//! creates one memo per run and never shares it across backends.
//!
//! A memo can additionally be **backed** by the process-wide
//! [`CompileCache`] ([`ScheduleMemo::backed`]): lookups that miss every
//! layer fall through to the cache under the owning backend's
//! [`config_fingerprint`](crate::backend::SchedulerBackend::config_fingerprint),
//! and inserts are written through, so schedules survive the memo and are
//! replayed by *later compile requests* — including requests for different
//! networks that share cells. Because cache hits are confirmed exactly and
//! backends are deterministic, a cache-backed run stays bit-identical to a
//! cache-free run; only its wall time and hit counters differ.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serenity_ir::fingerprint::{fingerprint, structural_eq};
use serenity_ir::fxhash::FxHashMap;
use serenity_ir::{Graph, NodeId};

use crate::cache::CompileCache;
use crate::Schedule;

/// Where a [`ScheduleMemo::lookup_traced`] hit was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoSource {
    /// This memo or one of its parent layers (an in-request hit).
    Memo,
    /// The backing [`CompileCache`] (a cross-request hit).
    Cache,
}

struct MemoEntry {
    /// The graph the schedule belongs to, kept for exact hit confirmation.
    graph: Graph,
    /// The pinned prefix the schedule was produced under. Part of the
    /// entry's identity: a schedule computed unpinned need not start with
    /// the boundary placeholder, so replaying it into a pinned segment
    /// would be rejected by `Partition::combine` (and a pin-constrained
    /// schedule replayed unpinned could be needlessly suboptimal).
    prefix: Vec<NodeId>,
    order: Vec<NodeId>,
    peak_bytes: u64,
}

/// A thread-safe fingerprint → schedule cache (see the module docs).
///
/// A memo can be **layered** over a frozen parent
/// ([`ScheduleMemo::layered`]): lookups fall through to the parent, inserts
/// stay in the child. The parallel rewrite search gives every concurrently
/// scored candidate its own layer over the shared iteration-start memo, so
/// what each candidate *sees* — and therefore its hit/miss counters and the
/// schedules it replays — is independent of worker scheduling; the layers
/// are then folded back deterministically ([`ScheduleMemo::absorb`]) in
/// candidate order.
#[derive(Default)]
pub struct ScheduleMemo {
    entries: Mutex<FxHashMap<u64, Vec<MemoEntry>>>,
    parent: Option<Arc<ScheduleMemo>>,
    /// Process-wide fall-through and write-through target, with the
    /// backend identity its entries are keyed under.
    backing: Option<(Arc<CompileCache>, u64)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ScheduleMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleMemo")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ScheduleMemo {
    /// An empty memo.
    pub fn new() -> Self {
        ScheduleMemo::default()
    }

    /// An empty memo layered over `parent`: lookups consult this memo first
    /// and fall through to the parent (and its ancestors); inserts stay
    /// local. The parent must not be mutated while the layer is in use if
    /// deterministic counters are required.
    pub fn layered(parent: Arc<ScheduleMemo>) -> Self {
        ScheduleMemo { parent: Some(parent), ..ScheduleMemo::default() }
    }

    /// An empty memo backed by the process-wide `cache` under
    /// `backend_key` (the owning backend's
    /// [`config_fingerprint`](crate::backend::SchedulerBackend::config_fingerprint)):
    /// lookups missing every layer fall through to the cache, and inserts
    /// (including absorbed layers) are written through, publishing
    /// schedules to later compile requests.
    pub fn backed(cache: Arc<CompileCache>, backend_key: u64) -> Self {
        ScheduleMemo { backing: Some((cache, backend_key)), ..ScheduleMemo::default() }
    }

    /// Whether this memo (or any ancestor layer) falls through to a
    /// [`CompileCache`].
    pub fn is_cache_backed(&self) -> bool {
        self.backing.is_some() || self.parent.as_ref().is_some_and(|p| p.is_cache_backed())
    }

    /// Whether an entry for (`key`, `graph`, `prefix`) exists here, in any
    /// ancestor, or in the backing cache — without touching the memo
    /// hit/miss counters (the cache still counts its own).
    fn find(&self, key: u64, graph: &Graph, prefix: &[NodeId]) -> Option<(Schedule, MemoSource)> {
        let local = {
            let entries = self.entries.lock().expect("memo lock");
            entries.get(&key).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|e| e.prefix == prefix && structural_eq(&e.graph, graph))
                    .map(|e| Schedule { order: e.order.clone(), peak_bytes: e.peak_bytes })
            })
        };
        if let Some(schedule) = local {
            return Some((schedule, MemoSource::Memo));
        }
        if let Some(found) = self.parent.as_ref().and_then(|p| p.find(key, graph, prefix)) {
            return Some(found);
        }
        self.backing
            .as_ref()
            .and_then(|(cache, backend_key)| cache.lookup(*backend_key, key, graph, prefix))
            .map(|schedule| (schedule, MemoSource::Cache))
    }

    /// Folds another memo's local entries into this one (first write wins,
    /// exactly like [`ScheduleMemo::insert`]). Used to merge per-candidate
    /// layers back into the shared memo after an iteration of parallel
    /// scoring; call it in a deterministic order.
    pub fn absorb(&self, overlay: ScheduleMemo) {
        let drained = overlay.entries.into_inner().expect("memo lock");
        let mut entries = self.entries.lock().expect("memo lock");
        for (key, bucket) in drained {
            for entry in bucket {
                let slot = entries.entry(key).or_default();
                if !slot
                    .iter()
                    .any(|e| e.prefix == entry.prefix && structural_eq(&e.graph, &entry.graph))
                {
                    if let Some((cache, backend_key)) = &self.backing {
                        cache.insert(
                            *backend_key,
                            key,
                            &entry.graph,
                            &entry.prefix,
                            &Schedule { order: entry.order.clone(), peak_bytes: entry.peak_bytes },
                        );
                    }
                    slot.push(entry);
                }
            }
        }
    }

    /// The canonical key of `graph` (compute once, pass to both
    /// [`ScheduleMemo::lookup`] and [`ScheduleMemo::insert`]).
    pub fn key(graph: &Graph) -> u64 {
        fingerprint(graph)
    }

    /// Returns the memoized schedule of a graph structurally equal to
    /// `graph` that was produced under the same pinned `prefix`, if one was
    /// inserted here, in a parent layer, or in the backing cache. Counts a
    /// hit or a miss (on this memo only — parent counters are untouched).
    pub fn lookup(&self, key: u64, graph: &Graph, prefix: &[NodeId]) -> Option<Schedule> {
        self.lookup_traced(key, graph, prefix).map(|(schedule, _)| schedule)
    }

    /// Like [`ScheduleMemo::lookup`], but also reports whether the hit was
    /// resolved in-request ([`MemoSource::Memo`]) or by the process-wide
    /// backing cache ([`MemoSource::Cache`]), so callers can attribute it
    /// to the right counter and event.
    pub fn lookup_traced(
        &self,
        key: u64,
        graph: &Graph,
        prefix: &[NodeId],
    ) -> Option<(Schedule, MemoSource)> {
        match self.find(key, graph, prefix) {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `schedule` (produced under pinned `prefix`) for `graph` under
    /// `key`, writing through to the backing cache if one is installed. A
    /// structurally equal entry with the same prefix already present is
    /// kept (first write wins — backends are deterministic, so the
    /// schedules are identical anyway).
    pub fn insert(&self, key: u64, graph: &Graph, prefix: &[NodeId], schedule: &Schedule) {
        self.insert_impl(key, graph, prefix, schedule, true);
    }

    /// Stores a schedule locally *without* writing through to the backing
    /// cache. Used to backfill a cross-request cache hit into the
    /// request's own memo, so N structurally identical segments pay the
    /// shared-shard lookup once instead of N times.
    pub(crate) fn insert_local(
        &self,
        key: u64,
        graph: &Graph,
        prefix: &[NodeId],
        schedule: &Schedule,
    ) {
        self.insert_impl(key, graph, prefix, schedule, false);
    }

    fn insert_impl(
        &self,
        key: u64,
        graph: &Graph,
        prefix: &[NodeId],
        schedule: &Schedule,
        write_through: bool,
    ) {
        let mut entries = self.entries.lock().expect("memo lock");
        let bucket = entries.entry(key).or_default();
        if bucket.iter().any(|e| e.prefix == prefix && structural_eq(&e.graph, graph)) {
            return;
        }
        if write_through {
            if let Some((cache, backend_key)) = &self.backing {
                cache.insert(*backend_key, key, graph, prefix, schedule);
            }
        }
        bucket.push(MemoEntry {
            graph: graph.clone(),
            prefix: prefix.to_vec(),
            order: schedule.order.clone(),
            peak_bytes: schedule.peak_bytes,
        });
    }

    /// Number of locally memoized schedules (excludes parent layers).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memo lock").values().map(Vec::len).sum()
    }

    /// Whether the memo holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that replayed a stored schedule.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (including collision-confirm failures).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::topo;

    fn chain(name: &str, bytes: u64) -> Graph {
        let mut g = Graph::new(name);
        let a = g.add_opaque(format!("{name}_a"), bytes, &[]).unwrap();
        let b = g.add_opaque(format!("{name}_b"), bytes * 2, &[a]).unwrap();
        g.add_opaque(format!("{name}_c"), bytes / 2, &[b]).unwrap();
        g
    }

    #[test]
    fn hit_replays_across_renamed_twins() {
        let memo = ScheduleMemo::new();
        let g = chain("g", 10);
        let schedule = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        memo.insert(ScheduleMemo::key(&g), &g, &[], &schedule);

        // A structurally identical graph with different names hits.
        let twin = chain("other", 10);
        let replayed = memo.lookup(ScheduleMemo::key(&twin), &twin, &[]).expect("twin hits");
        assert_eq!(replayed, schedule);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 0);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn different_structure_misses() {
        let memo = ScheduleMemo::new();
        let g = chain("g", 10);
        let schedule = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        memo.insert(ScheduleMemo::key(&g), &g, &[], &schedule);

        let other = chain("g", 64);
        assert!(memo.lookup(ScheduleMemo::key(&other), &other, &[]).is_none());
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn different_pinned_prefix_misses() {
        // Structurally identical segments, one pinned (boundary placeholder
        // leads) and one not: the unpinned schedule must never replay into
        // the pinned lookup, and vice versa.
        let memo = ScheduleMemo::new();
        let g = chain("g", 10);
        let key = ScheduleMemo::key(&g);
        let unpinned = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        memo.insert(key, &g, &[], &unpinned);

        let pin = [serenity_ir::NodeId::from_index(0)];
        assert!(memo.lookup(key, &g, &pin).is_none(), "pinned lookup must not see unpinned entry");
        memo.insert(key, &g, &pin, &unpinned);
        assert_eq!(memo.len(), 2, "pinned and unpinned entries coexist");
        assert!(memo.lookup(key, &g, &pin).is_some());
        assert!(memo.lookup(key, &g, &[]).is_some());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let memo = ScheduleMemo::new();
        let g = chain("g", 10);
        let schedule = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        let key = ScheduleMemo::key(&g);
        memo.insert(key, &g, &[], &schedule);
        memo.insert(key, &chain("renamed", 10), &[], &schedule);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn layered_lookup_falls_through_and_absorb_merges() {
        let base = Arc::new(ScheduleMemo::new());
        let g = chain("g", 10);
        let key = ScheduleMemo::key(&g);
        let schedule = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        base.insert(key, &g, &[], &schedule);

        let layer = ScheduleMemo::layered(Arc::clone(&base));
        // Parent entry is visible through the layer; the hit counts on the
        // layer, not the parent.
        assert_eq!(layer.lookup(key, &g, &[]).unwrap(), schedule);
        assert_eq!(layer.hits(), 1);
        assert_eq!(base.hits(), 0);

        // Local inserts stay local until absorbed.
        let h = chain("h", 64);
        let hk = ScheduleMemo::key(&h);
        let hs = Schedule::from_order(&h, topo::kahn(&h)).unwrap();
        layer.insert(hk, &h, &[], &hs);
        assert!(base.lookup(hk, &h, &[]).is_none());
        base.absorb(layer);
        assert_eq!(base.lookup(hk, &h, &[]).unwrap(), hs);
        // Absorbing a duplicate of an existing entry keeps the first write.
        let dup = ScheduleMemo::new();
        dup.insert(key, &chain("renamed", 10), &[], &schedule);
        base.absorb(dup);
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn cache_backed_memo_falls_through_and_writes_through() {
        let cache = Arc::new(crate::cache::CompileCache::new());
        let a = ScheduleMemo::backed(Arc::clone(&cache), 7);
        let g = chain("g", 10);
        let key = ScheduleMemo::key(&g);
        let s = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        a.insert(key, &g, &[], &s);
        assert_eq!(a.lookup_traced(key, &g, &[]).unwrap().1, MemoSource::Memo);

        // A second, fresh memo for the same backend ("the next request")
        // sees the entry through the cache.
        let b = ScheduleMemo::backed(Arc::clone(&cache), 7);
        let (replayed, source) = b.lookup_traced(key, &g, &[]).expect("cache fall-through");
        assert_eq!(replayed, s);
        assert_eq!(source, MemoSource::Cache);

        // A memo keyed for a different backend configuration must not.
        let other = ScheduleMemo::backed(Arc::clone(&cache), 8);
        assert!(other.lookup(key, &g, &[]).is_none());

        // Layers over a backed memo reach the cache too, and absorbing an
        // overlay into a backed memo publishes the overlay's entries.
        let layer = ScheduleMemo::layered(Arc::new(ScheduleMemo::backed(Arc::clone(&cache), 7)));
        assert!(layer.is_cache_backed());
        assert_eq!(layer.lookup_traced(key, &g, &[]).unwrap().1, MemoSource::Cache);

        let h = chain("h", 64);
        let hk = ScheduleMemo::key(&h);
        let hs = Schedule::from_order(&h, topo::kahn(&h)).unwrap();
        let overlay = ScheduleMemo::new();
        overlay.insert(hk, &h, &[], &hs);
        a.absorb(overlay);
        let fresh = ScheduleMemo::backed(Arc::clone(&cache), 7);
        assert_eq!(fresh.lookup_traced(hk, &h, &[]).unwrap().1, MemoSource::Cache);
    }

    #[test]
    fn colliding_keys_are_confirmed_structurally() {
        // Force both graphs into the same bucket with an artificial key; the
        // structural confirm must separate them.
        let memo = ScheduleMemo::new();
        let g = chain("g", 10);
        let h = chain("h", 99);
        let gs = Schedule::from_order(&g, topo::kahn(&g)).unwrap();
        let hs = Schedule::from_order(&h, topo::kahn(&h)).unwrap();
        memo.insert(42, &g, &[], &gs);
        memo.insert(42, &h, &[], &hs);
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.lookup(42, &h, &[]).unwrap().peak_bytes, hs.peak_bytes);
        assert_eq!(memo.lookup(42, &g, &[]).unwrap().peak_bytes, gs.peak_bytes);
    }
}
