//! Kernel-wise partitioning of `concat + depthwise conv` (§3.3, Eq. 7–8).

use serenity_ir::edit::GraphEdit;
use serenity_ir::{ChannelRange, Graph, GraphError, NodeId, Op};

use super::{concat_feeding, RewriteDelta, RewriteRule, RewriteSite};

/// Rewrites `y = depthconv(concat(x₁…xₖ))` into
/// `y = slab_concat(partial_depthconv₁(x₁), …, partial_depthconvₖ(xₖ))`.
///
/// A depthwise convolution applies one kernel per channel, so it commutes
/// with channel concatenation: every output channel depends on exactly one
/// input branch. Each `partial_depthconvᵢ` uses the kernel slice matching its
/// branch's channels and writes its result directly into its slice of the
/// pre-allocated output buffer ([`Op::SlabConcat`]). Memory cost drops from
/// `Σᵢ xᵢ + y` to `max(xᵢ + y)` (Figure 9, bottom).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelWiseRule;

impl RewriteRule for KernelWiseRule {
    fn name(&self) -> &'static str {
        "kernel-wise"
    }

    fn find(&self, graph: &Graph) -> Vec<RewriteSite> {
        graph.node_ids().filter_map(|v| self.match_at(graph, v)).collect()
    }

    fn match_at(&self, graph: &Graph, consumer: NodeId) -> Option<RewriteSite> {
        let Op::DepthwiseConv2d(dw) = &graph.node(consumer).op else {
            return None;
        };
        if dw.weight.is_sliced() {
            return None;
        }
        let (concat, branches) = concat_feeding(graph, consumer)?;
        Some(RewriteSite { rule: self.name(), concat, consumer, branches })
    }

    fn apply_delta(&self, graph: &Graph, site: &RewriteSite) -> Result<RewriteDelta, GraphError> {
        let Op::DepthwiseConv2d(dw) = &graph.node(site.consumer).op else {
            return Err(GraphError::InvalidOrder {
                detail: format!("site consumer {} is not a depthwise conv", site.consumer),
            });
        };
        let branches: &[NodeId] = graph.preds(site.concat);
        let consumer_name = &graph.node(site.consumer).name;

        // Splice in place: one partial depthwise conv per branch writing
        // into its slice of the pre-allocated slab — O(branches).
        let mut edit = GraphEdit::new(graph, site.consumer);
        let mut partials = Vec::with_capacity(branches.len());
        let mut offset = 0u32;
        for (i, &x) in branches.iter().enumerate() {
            let channels = graph.node(x).shape.c() as u32;
            let slice = ChannelRange::new(offset, offset + channels);
            offset += channels;
            let mut partial = dw.clone();
            partial.weight = partial.weight.with_kernel_slice(slice);
            let id = edit.add_node(
                format!("{consumer_name}_part{i}"),
                Op::DepthwiseConv2d(partial),
                &[x],
            )?;
            partials.push(id);
        }
        let concat =
            edit.add_node(format!("{consumer_name}_cat"), Op::SlabConcat { axis: 3 }, &partials)?;
        edit.redirect(site.consumer, concat);
        edit.remove(site.concat);
        edit.remove(site.consumer);
        let (out, splice) = edit.finish()?;
        Ok(RewriteDelta {
            graph: out,
            removed: vec![site.concat, site.consumer],
            added: splice.added.clone(),
            splice,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Rewriter;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn concat_dw_cell(branch_channels: &[usize]) -> Graph {
        let mut b = GraphBuilder::new("cdw");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let branches: Vec<_> = branch_channels.iter().map(|&c| b.conv1x1(x, c).unwrap()).collect();
        let cat = b.concat(&branches).unwrap();
        let y = b.depthwise(cat, (3, 3), (1, 1), Padding::Same).unwrap();
        let out = b.conv1x1(y, 8).unwrap();
        b.mark_output(out);
        b.finish()
    }

    #[test]
    fn produces_partial_depthwise_and_concat() {
        let g = concat_dw_cell(&[2, 3]);
        let site = KernelWiseRule.find(&g).remove(0);
        let out = KernelWiseRule.apply(&g, &site).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.len(), g.len() + 1); // 2 partials + concat replace 2 nodes

        let partials: Vec<_> = out
            .nodes()
            .filter(|n| matches!(&n.op, Op::DepthwiseConv2d(c) if c.weight.is_sliced()))
            .collect();
        assert_eq!(partials.len(), 2);
        let mut slices: Vec<(u32, u32)> = partials
            .iter()
            .map(|n| {
                let Op::DepthwiseConv2d(c) = &n.op else { unreachable!() };
                let s = c.weight.kernel_slice.unwrap();
                (s.start, s.end)
            })
            .collect();
        slices.sort_unstable();
        assert_eq!(slices, vec![(0, 2), (2, 5)]);
    }

    #[test]
    fn partial_outputs_tile_the_channel_axis() {
        let g = concat_dw_cell(&[2, 3]);
        let rewritten = Rewriter::kernel_only().rewrite(&g).graph;
        let cat = rewritten
            .node_ids()
            .find(|&id| {
                matches!(rewritten.node(id).op, Op::SlabConcat { .. })
                    && rewritten.node(id).name.contains("_cat")
            })
            .expect("rewritten slab concat exists");
        assert_eq!(rewritten.node(cat).shape.c(), 5);
        let pred_channels: Vec<usize> =
            rewritten.preds(cat).iter().map(|&p| rewritten.node(p).shape.c()).collect();
        assert_eq!(pred_channels, vec![2, 3]);
    }

    #[test]
    fn rewrite_lowers_optimal_peak() {
        let g = concat_dw_cell(&[8, 8, 8, 8]);
        let rewritten = Rewriter::kernel_only().rewrite(&g).graph;
        let before = crate::dp::DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let after = crate::dp::DpScheduler::new().schedule(&rewritten).unwrap().schedule.peak_bytes;
        assert!(after < before, "after {after} >= before {before}");
    }

    #[test]
    fn weight_and_mac_counts_are_preserved() {
        let g = concat_dw_cell(&[2, 3, 4]);
        let rewritten = Rewriter::kernel_only().rewrite(&g).graph;
        assert_eq!(g.total_weights(), rewritten.total_weights());
        assert_eq!(g.total_macs(), rewritten.total_macs());
    }
}
