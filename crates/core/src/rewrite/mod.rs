//! Identity graph rewriting (§3.3, Figure 9).
//!
//! Concatenation keeps *every* incoming branch live until the consumer of the
//! concatenated tensor finishes — the dominant peak in NAS-style cells. Two
//! rewrites remove that pressure while keeping the network's arithmetic
//! output identical:
//!
//! * **Channel-wise partitioning** ([`ChannelWiseRule`]): `concat + conv`
//!   becomes per-branch *partial convolutions* over input-channel slices of
//!   the original kernel, summed by an `add` (Equations 3–6):
//!   `y = [Σᵢ w₁ᵢ*xᵢ, …, Σᵢ wₘᵢ*xᵢ] = Σᵢ (w⋆ᵢ * xᵢ)`.
//!   Each branch can now be consumed and freed as soon as it is produced.
//! * **Kernel-wise partitioning** ([`KernelWiseRule`]): `concat + depthwise
//!   conv` becomes per-branch *partial depthwise convolutions* whose results
//!   are concatenated (Equations 7–8) — depthwise kernels act per channel, so
//!   the op commutes with concatenation.
//!
//! Rewrites are found by pattern matching (as in production compilers,
//! §3.3 "Implementation") and applied as **in-place splices**
//! ([`serenity_ir::edit::GraphEdit`]): the matched pair is tombstoned, the
//! replacement nodes materialize at the consumer's position, and only one
//! compact renumbering pass touches the rest of the graph — no per-node
//! shape re-inference, no old→new hash map. The resulting
//! [`RewriteDelta::splice`] record drives incremental fingerprinting and
//! incremental site rediscovery (see the [`RewriteRule`] delta/splice
//! contract); the pre-splice node-by-node rebuild survives as the property
//! tests' reference path ([`rebuild::reference_apply`]). Weight slices stay
//! symbolic ([`serenity_ir::WeightRef`]), which lets the reference
//! interpreter in `serenity-tensor` verify output equality.
//!
//! Two drivers run the rules:
//!
//! * [`Rewriter`] — the blind fixpoint: apply every matched site once, no
//!   scheduler in the loop (the legacy mode, kept for
//!   `RewriteMode::Always` and ablations).
//! * [`RewriteSearch`] — the cost-guided loop (Figure 4 run iteratively):
//!   per iteration every site becomes a candidate graph, each candidate is
//!   *scheduled* by a scoring backend (optionally across worker threads,
//!   with a deterministic replay that keeps any thread count bit-identical
//!   to serial), and only the best strictly-peak-reducing candidate is
//!   kept, until a fixed point, deadline, or budget. Unchanged
//!   divide-and-conquer segments are replayed from a
//!   [`ScheduleMemo`](crate::memo::ScheduleMemo) instead of re-searched.

mod channel;
mod kernel;
mod push;
pub mod rebuild;
mod search;

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serenity_ir::edit::SpliceInfo;
use serenity_ir::{Graph, GraphError, NodeId, Op};

pub use channel::ChannelWiseRule;
pub use kernel::KernelWiseRule;
pub use push::ActivationPushdownRule;
pub use search::{
    RewriteSearch, RewriteSearchConfig, RewriteSearchOutcome, RewriteSearchSummary, RewriteStop,
};

/// A matched rewrite opportunity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteSite {
    /// Name of the rule that matched.
    pub rule: &'static str,
    /// The concatenation node.
    pub concat: NodeId,
    /// The convolution (or depthwise convolution) consuming it.
    pub consumer: NodeId,
    /// Number of concatenated branches.
    pub branches: usize,
}

/// The effect of applying one rewrite rule at one site: the rewritten graph
/// plus a description of what changed, so consumers (the cost-guided search,
/// event sinks, incremental fingerprints) can reason about the *delta*
/// instead of diffing graphs.
#[derive(Debug, Clone)]
pub struct RewriteDelta {
    /// The rewritten graph.
    pub graph: Graph,
    /// Pre-rewrite ids of the nodes the rewrite removed (the matched concat
    /// and its consumer).
    pub removed: Vec<NodeId>,
    /// Post-rewrite ids of the nodes the rewrite created (partials plus the
    /// combining add/concat), in creation order.
    pub added: Vec<NodeId>,
    /// The splice record: old→new id map and the first changed position.
    /// Produced by [`serenity_ir::edit::GraphEdit::finish`]; consumers use
    /// it to remap rewrite sites across an accepted delta and to update
    /// fingerprints incrementally instead of rehashing the whole graph.
    pub splice: SpliceInfo,
}

/// A graph-rewriting rule: enumerates sites and applies the transformation
/// as a delta.
///
/// # Delta/splice contract
///
/// [`RewriteRule::apply_delta`] must build the rewritten graph through
/// [`serenity_ir::edit::GraphEdit`] (or satisfy the same numbering: live
/// nodes keep their relative order and every added node materializes at the
/// removed consumer's position), and the returned
/// [`RewriteDelta::splice`] must be faithful: every node below
/// `splice.first_changed` is bit-identical (id, op, shape, predecessor
/// list) between the input and output graphs, `splice.node_map` maps every
/// surviving pre-rewrite id to its post-rewrite id, and
/// [`RewriteDelta::added`] lists exactly the created nodes. Incremental
/// fingerprinting ([`serenity_ir::fingerprint::FingerprintCache::update`])
/// and the search's incremental site rescan are sound only under this
/// contract; the property suite `rewrite_splice_properties` checks it
/// against a node-by-node rebuild ([`rebuild::reference_apply`]).
pub trait RewriteRule {
    /// Short rule name used in reports.
    fn name(&self) -> &'static str;

    /// All sites of this rule in `graph`, in id order.
    fn find(&self, graph: &Graph) -> Vec<RewriteSite>;

    /// The site of this rule whose consumer is exactly `consumer`, if the
    /// rule matches there — an O(degree) point query, used for incremental
    /// site rescans after an accepted delta. Must agree with
    /// [`RewriteRule::find`]: `find` returns precisely the sites for which
    /// `match_at` is `Some`.
    fn match_at(&self, graph: &Graph, consumer: NodeId) -> Option<RewriteSite> {
        self.find(graph).into_iter().find(|s| s.consumer == consumer)
    }

    /// Applies the rule at `site`, returning the rewritten graph together
    /// with the removed/added node sets and the splice record (see the
    /// trait-level contract).
    ///
    /// # Errors
    ///
    /// Returns a graph error if `site` does not match this rule on `graph`
    /// (e.g. because the graph changed since [`RewriteRule::find`]).
    fn apply_delta(&self, graph: &Graph, site: &RewriteSite) -> Result<RewriteDelta, GraphError>;

    /// Applies the rule at `site`, returning only the rewritten graph.
    ///
    /// # Errors
    ///
    /// As [`RewriteRule::apply_delta`].
    fn apply(&self, graph: &Graph, site: &RewriteSite) -> Result<Graph, GraphError> {
        self.apply_delta(graph, site).map(|delta| delta.graph)
    }
}

/// Description of one applied rewrite (sites reference pre-rewrite ids, so
/// reports carry names instead).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedRewrite {
    /// Rule name.
    pub rule: &'static str,
    /// Name of the rewritten concat node.
    pub concat: String,
    /// Name of the rewritten consumer node.
    pub consumer: String,
    /// Number of branches partitioned.
    pub branches: usize,
}

/// Result of running the rewriter to fixpoint.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten graph (equal to the input when nothing matched).
    pub graph: Graph,
    /// Every application, in order.
    pub applied: Vec<AppliedRewrite>,
}

impl RewriteOutcome {
    /// Whether any rewrite was applied.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// A preset bundle of rewrite rules: the blind fixpoint driver
/// ([`Rewriter::rewrite`]) and the entry point to the cost-guided search
/// ([`Rewriter::cost_guided`]).
///
/// [`Rewriter::rewrite`] applies every matched site unconditionally, without
/// consulting a scheduler — the paper's "apply all identity rewrites" mode,
/// kept for `RewriteMode::Always` and as a cheap preprocessing step. The
/// recommended flow is [`Rewriter::cost_guided`], which turns the same rule
/// set into a [`RewriteSearch`] that keeps a rewrite only when scheduling
/// confirms it lowers the peak.
///
/// Each application strictly decreases the number of *unsliced* convolutions
/// adjacent to a concat, so the fixpoint always terminates; a hard
/// application cap ([`Rewriter::max_applications`]) guards against rule bugs
/// regardless.
///
/// # Example
///
/// ```
/// use serenity_core::rewrite::Rewriter;
/// use serenity_ir::{GraphBuilder, DType, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 4, DType::F32);
/// let l = b.conv1x1(x, 4)?;
/// let r = b.conv1x1(x, 4)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let outcome = Rewriter::standard().rewrite(&g);
/// assert!(outcome.changed());
/// // concat+conv (2 nodes) became 2 partial convs + add (3 nodes).
/// assert_eq!(outcome.graph.len(), g.len() + 1);
/// # Ok(())
/// # }
/// ```
///
/// # Example: opting into the cost-guided search
///
/// `Rewriter::standard().rewrite(&g)` applies blindly; chaining
/// [`Rewriter::cost_guided`] instead runs the scheduler-in-the-loop
/// [`RewriteSearch`], which only keeps rewrites that provably lower the
/// scored peak (implementors of [`RewriteRule`] provide `apply_delta`;
/// `apply` is a derived convenience):
///
/// ```
/// use serenity_core::backend::CompileContext;
/// use serenity_core::rewrite::Rewriter;
/// use serenity_ir::{GraphBuilder, DType, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 4, DType::F32);
/// let l = b.conv1x1(x, 8)?;
/// let r = b.conv1x1(x, 8)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let outcome = Rewriter::standard().cost_guided().run(&g, &CompileContext::unconstrained())?;
/// assert!(outcome.summary.final_peak_bytes <= outcome.summary.initial_peak_bytes);
/// # Ok(())
/// # }
/// ```
pub struct Rewriter {
    rules: Vec<Arc<dyn RewriteRule + Send + Sync>>,
    max_applications: usize,
}

impl std::fmt::Debug for Rewriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rewriter")
            .field("rules", &self.rules.iter().map(|r| r.name()).collect::<Vec<_>>())
            .field("max_applications", &self.max_applications)
            .finish()
    }
}

impl Default for Rewriter {
    fn default() -> Self {
        Rewriter::standard()
    }
}

impl Rewriter {
    /// Both paper rules — channel-wise and kernel-wise partitioning — plus
    /// activation pushdown, which exposes patterns hidden behind ReLUs (the
    /// DARTS cell-output situation).
    pub fn standard() -> Self {
        Rewriter {
            rules: vec![
                Arc::new(ChannelWiseRule),
                Arc::new(KernelWiseRule),
                Arc::new(ActivationPushdownRule),
            ],
            max_applications: 512,
        }
    }

    /// Only channel-wise partitioning (`concat + conv`).
    pub fn channel_only() -> Self {
        Rewriter { rules: vec![Arc::new(ChannelWiseRule)], max_applications: 512 }
    }

    /// Only kernel-wise partitioning (`concat + depthwise conv`).
    pub fn kernel_only() -> Self {
        Rewriter { rules: vec![Arc::new(KernelWiseRule)], max_applications: 512 }
    }

    /// A rewriter over a custom rule set, in priority order.
    pub fn with_rules(rules: Vec<Arc<dyn RewriteRule + Send + Sync>>) -> Self {
        Rewriter { rules, max_applications: 512 }
    }

    /// Caps the number of rule applications **per [`Rewriter::rewrite`]
    /// call, counted across all rules together** (not per rule): once the
    /// cap is reached the fixpoint loop stops, even if sites remain. A cap
    /// of `0` disables rewriting entirely — `rewrite` returns the input
    /// graph unchanged. The same cap bounds accepted applications of a
    /// search built via [`Rewriter::cost_guided`].
    pub fn max_applications(mut self, max: usize) -> Self {
        self.max_applications = max;
        self
    }

    /// The rule set, in priority order.
    pub fn rules(&self) -> &[Arc<dyn RewriteRule + Send + Sync>] {
        &self.rules
    }

    /// Turns this preset into a cost-guided [`RewriteSearch`] over the same
    /// rules (and the same application cap).
    pub fn cost_guided(&self) -> RewriteSearch {
        RewriteSearch::new(self.rules.clone()).config(RewriteSearchConfig {
            max_applications: self.max_applications,
            ..RewriteSearchConfig::default()
        })
    }

    /// All sites of all rules in `graph`.
    pub fn find_sites(&self, graph: &Graph) -> Vec<RewriteSite> {
        let mut sites: Vec<RewriteSite> = self.rules.iter().flat_map(|r| r.find(graph)).collect();
        sites.sort_by_key(|s| (s.consumer, s.concat));
        sites
    }

    /// Applies rules to fixpoint (blindly — no scheduler in the loop) and
    /// returns the rewritten graph plus the application log. At most
    /// [`Rewriter::max_applications`] applications are performed per call,
    /// counted across all rules.
    pub fn rewrite(&self, graph: &Graph) -> RewriteOutcome {
        let mut current = graph.clone();
        let mut applied = Vec::new();
        for _ in 0..self.max_applications {
            let Some((rule, site)) =
                self.rules.iter().find_map(|r| r.find(&current).into_iter().next().map(|s| (r, s)))
            else {
                break;
            };
            let record = AppliedRewrite {
                rule: site.rule,
                concat: current.node(site.concat).name.clone(),
                consumer: current.node(site.consumer).name.clone(),
                branches: site.branches,
            };
            current =
                rule.apply(&current, &site).expect("a site reported by find() must apply cleanly");
            applied.push(record);
        }
        RewriteOutcome { graph: current, applied }
    }
}

/// Shared matching precondition: `concat` (channel axis, ≥ 2 branches, not an
/// explicit output) whose *only* consumer is `consumer`. Slab concats
/// produced by earlier kernel-wise rewrites also match — cascading a
/// channel-wise rewrite over them removes the copy entirely.
pub(crate) fn concat_feeding(graph: &Graph, consumer: NodeId) -> Option<(NodeId, usize)> {
    let preds = graph.preds(consumer);
    if preds.len() != 1 {
        return None;
    }
    let concat = preds[0];
    let axis = match graph.node(concat).op {
        Op::Concat { axis } | Op::SlabConcat { axis } => axis,
        _ => return None,
    };
    if axis != 3 {
        return None;
    }
    if graph.succs(concat).len() != 1 {
        return None;
    }
    if graph.explicit_outputs().contains(&concat) {
        return None;
    }
    let branches = graph.preds(concat).len();
    if branches < 2 {
        return None;
    }
    Some((concat, branches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::{mem, topo, DType, GraphBuilder, Padding};

    /// A cell with both rewrite patterns: concat→conv and concat→depthwise.
    /// The concatenated branches dominate the footprint (16 channels each)
    /// while the combined outputs are narrow (8 channels), mirroring the
    /// bottleneck cells of SwiftNet.
    fn dual_pattern_cell() -> Graph {
        let mut b = GraphBuilder::new("dual");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let b1 = b.conv1x1(x, 16).unwrap();
        let b2 = b.conv1x1(x, 16).unwrap();
        let b3 = b.conv1x1(x, 16).unwrap();
        let cat1 = b.concat(&[b1, b2, b3]).unwrap();
        let conv = b.conv(cat1, 8, (3, 3), (1, 1), Padding::Same).unwrap();

        let c1 = b.conv1x1(x, 16).unwrap();
        let c2 = b.conv1x1(x, 16).unwrap();
        let cat2 = b.concat(&[c1, c2]).unwrap();
        let dw = b.depthwise(cat2, (3, 3), (1, 1), Padding::Same).unwrap();
        let dwp = b.conv1x1(dw, 8).unwrap();

        let out = b.add(&[conv, dwp]).unwrap();
        b.mark_output(out);
        b.finish()
    }

    #[test]
    fn finds_both_patterns() {
        let g = dual_pattern_cell();
        let sites = Rewriter::standard().find_sites(&g);
        assert_eq!(sites.len(), 2);
        let rules: Vec<&str> = sites.iter().map(|s| s.rule).collect();
        assert!(rules.contains(&"channel-wise"));
        assert!(rules.contains(&"kernel-wise"));
    }

    #[test]
    fn rewrite_grows_node_count_by_branches_minus_one() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().rewrite(&g);
        assert!(outcome.changed());
        // Site 1 has 3 branches (+2); site 2 has 2 branches (+1); the slab
        // concat produced by site 2 feeds a pointwise conv, so channel-wise
        // partitioning cascades over it (+1). Three applications, +4 nodes.
        assert_eq!(outcome.applied.len(), 3);
        assert_eq!(outcome.graph.len(), g.len() + 4);
        assert!(outcome.graph.validate().is_ok());
    }

    #[test]
    fn fixpoint_has_no_remaining_sites() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().rewrite(&g);
        assert!(Rewriter::standard().find_sites(&outcome.graph).is_empty());
    }

    #[test]
    fn rewrite_lowers_optimal_peak_on_concat_heavy_cell() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().rewrite(&g);
        let before = crate::dp::DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let after =
            crate::dp::DpScheduler::new().schedule(&outcome.graph).unwrap().schedule.peak_bytes;
        assert!(after < before, "rewriting should lower the optimal peak ({after} vs {before})");
    }

    #[test]
    fn kahn_peak_is_finite_on_rewritten_graph() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().rewrite(&g);
        let order = topo::kahn(&outcome.graph);
        assert!(mem::peak_bytes(&outcome.graph, &order).is_ok());
    }

    #[test]
    fn concat_with_second_consumer_is_not_matched() {
        let mut b = GraphBuilder::new("shared");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let l = b.conv1x1(x, 4).unwrap();
        let r = b.conv1x1(x, 4).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let conv = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        let second = b.relu(cat).unwrap(); // second consumer of the concat
        let reduced = b.conv1x1(second, 8).unwrap();
        let out = b.add(&[conv, reduced]).unwrap();
        b.mark_output(out);
        let g = b.finish();
        assert!(Rewriter::standard().find_sites(&g).is_empty());
    }

    #[test]
    fn output_concat_is_not_matched() {
        let mut b = GraphBuilder::new("outcat");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let l = b.conv1x1(x, 4).unwrap();
        let r = b.conv1x1(x, 4).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let conv = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(cat); // the concat tensor itself is a network output
        b.mark_output(conv);
        let g = b.finish();
        assert!(Rewriter::standard().find_sites(&g).is_empty());
    }

    #[test]
    fn application_cap_is_respected() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().max_applications(1).rewrite(&g);
        assert_eq!(outcome.applied.len(), 1);
    }

    #[test]
    fn application_cap_of_zero_disables_rewriting() {
        let g = dual_pattern_cell();
        let outcome = Rewriter::standard().max_applications(0).rewrite(&g);
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g, "a zero cap must return the input unchanged");
    }

    #[test]
    fn application_cap_counts_across_all_rules() {
        // The dual-pattern cell fires both channel-wise and kernel-wise
        // rules; the cap bounds their *total*, not each rule separately.
        let g = dual_pattern_cell();
        let capped = Rewriter::standard().max_applications(2).rewrite(&g);
        assert_eq!(capped.applied.len(), 2);
        let rules: Vec<&str> = capped.applied.iter().map(|a| a.rule).collect();
        assert!(rules.contains(&"channel-wise") && rules.contains(&"kernel-wise"), "{rules:?}");
    }

    #[test]
    fn application_cap_at_the_fixpoint_boundary() {
        // The uncapped fixpoint applies exactly 3 rewrites on this cell; a
        // cap equal to that count must reproduce the fixpoint, one less must
        // stop exactly one application short, and further headroom must not
        // change the result (each `rewrite()` call enforces its own cap).
        let g = dual_pattern_cell();
        let fixpoint = Rewriter::standard().rewrite(&g);
        let n = fixpoint.applied.len();
        assert_eq!(n, 3);

        let exact = Rewriter::standard().max_applications(n).rewrite(&g);
        assert_eq!(exact.applied, fixpoint.applied);
        assert_eq!(exact.graph, fixpoint.graph);

        let short = Rewriter::standard().max_applications(n - 1).rewrite(&g);
        assert_eq!(short.applied.len(), n - 1);
        assert_eq!(short.applied[..], fixpoint.applied[..n - 1]);

        let loose = Rewriter::standard().max_applications(n + 100).rewrite(&g);
        assert_eq!(loose.graph, fixpoint.graph);
    }

    #[test]
    fn plain_graph_is_unchanged() {
        let mut b = GraphBuilder::new("plain");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let y = b.conv(x, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        let g = b.finish();
        let outcome = Rewriter::standard().rewrite(&g);
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
    }
}
