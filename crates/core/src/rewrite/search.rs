//! The cost-guided, iterative rewrite↔schedule search.
//!
//! The paper's Figure 4 flow is *rewrite → schedule*, but §3.3's identity
//! rewrites only pay off when the scheduler confirms they lower the peak —
//! applying every matched site blindly can leave footprint on the table (or,
//! on cells whose concats are already cheap, add nodes for nothing). This
//! module closes the loop, following the iterative graph-optimization
//! formulation of Zhong et al. (2023):
//!
//! 1. Enumerate every rewrite site of every rule on the current graph.
//! 2. Turn each site into a **candidate** graph. Sites whose rewrite is
//!    footprint-neutral on its own but *enables* another rule (activation
//!    pushdown exposing `concat→conv`, a kernel-wise slab concat feeding a
//!    pointwise conv) are chained with the rewrites they enable, so a
//!    candidate is a maximal enabling chain, not a single blind step.
//! 3. **Score** each candidate by actually scheduling it (divide-and-conquer
//!    with the configured scoring backend). Segments unchanged since any
//!    previous scoring run replay from a [`ScheduleMemo`] instead of being
//!    re-searched.
//! 4. Accept the best candidate that does not *worsen* the scored peak;
//!    stop when every candidate worsens it (fixed point), on the iteration
//!    cap, the candidate budget, the application cap, or the
//!    [`CompileContext`] deadline. Peak-neutral acceptances traverse
//!    *plateaus*: on a cell with two symmetric concat arms, rewriting either
//!    arm alone leaves the max-peak unchanged and only the second step pays
//!    off. The search **returns the snapshot at the last strict
//!    improvement**, so trailing plateau steps that never paid off are
//!    discarded and the result never has a higher scored peak than the
//!    input. Termination is guaranteed even with neutral steps: every
//!    rewrite strictly shrinks the supply of matchable sites.
//!
//! The search is deterministic: sites are scored in a canonical order, ties
//! keep the earliest site, and all backends are deterministic, so serial and
//! parallel runs return bit-identical graphs and schedules.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use serenity_ir::{Graph, GraphError};

use crate::backend::{BeamBackend, CompileContext, CompileEvent, SchedulerBackend};
use crate::divide::DivideAndConquer;
use crate::memo::ScheduleMemo;
use crate::rewrite::{AppliedRewrite, RewriteRule, RewriteSite};
use crate::{ScheduleError, ScheduleStats};

/// Why a [`RewriteSearch`] run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteStop {
    /// Every candidate worsened the scored peak, or no sites remained.
    FixedPoint,
    /// [`RewriteSearchConfig::max_iterations`] accepted candidates were
    /// applied.
    IterationCap,
    /// [`RewriteSearchConfig::max_candidates`] candidates were scored.
    CandidateBudget,
    /// [`RewriteSearchConfig::max_applications`] rewrites were applied.
    ApplicationCap,
    /// The [`CompileContext`] deadline expired mid-search.
    Deadline,
}

impl std::fmt::Display for RewriteStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RewriteStop::FixedPoint => "fixed-point",
            RewriteStop::IterationCap => "iteration-cap",
            RewriteStop::CandidateBudget => "candidate-budget",
            RewriteStop::ApplicationCap => "application-cap",
            RewriteStop::Deadline => "deadline",
        };
        f.write_str(s)
    }
}

/// Knobs of the iterative search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteSearchConfig {
    /// Maximum accepted candidates (one per iteration).
    pub max_iterations: usize,
    /// Total candidate-scoring budget across all iterations (each scored
    /// candidate costs one scheduling run of the scoring backend).
    pub max_candidates: usize,
    /// Maximum rewrite applications overall (chained enabling rewrites
    /// count individually), mirroring
    /// [`Rewriter::max_applications`](crate::rewrite::Rewriter::max_applications).
    pub max_applications: usize,
    /// Maximum length of one enabling chain (site + the rewrites it
    /// exposes) within a single candidate.
    pub max_chain: usize,
}

impl Default for RewriteSearchConfig {
    fn default() -> Self {
        RewriteSearchConfig {
            max_iterations: 32,
            max_candidates: 256,
            max_applications: 512,
            max_chain: 4,
        }
    }
}

/// Aggregate report of one search run (serializable for CLI/bench output).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteSearchSummary {
    /// Iterations that accepted a candidate.
    pub iterations: usize,
    /// Candidates scored across all iterations.
    pub candidates_scored: usize,
    /// Rewrites applied to produce the final graph.
    pub applied: usize,
    /// Why the loop stopped.
    pub stop: RewriteStop,
    /// Schedule-memo hits across all scoring runs.
    pub memo_hits: u64,
    /// Schedule-memo misses across all scoring runs.
    pub memo_misses: u64,
    /// Scored peak of the input graph, in bytes (zero when the graph had no
    /// rewrite sites and was never scored).
    pub initial_peak_bytes: u64,
    /// Scored peak of the final graph, in bytes (zero when never scored).
    pub final_peak_bytes: u64,
    /// Whether the search's result graph was ultimately adopted. The search
    /// itself sets this to "some rewrite was accepted"; the pipeline flips
    /// it to `false` when its final full-backend comparison rejects the
    /// winner (then `applied`/`final_peak_bytes` describe a *discarded*
    /// candidate and the compiled graph is the original).
    pub kept: bool,
    /// Wall-clock time of the whole search.
    #[serde(with = "crate::schedule::duration_micros")]
    pub wall: Duration,
}

impl RewriteSearchSummary {
    /// Fraction of segment-scheduling lookups served from the memo.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Result of a [`RewriteSearch`] run.
#[derive(Debug, Clone)]
pub struct RewriteSearchOutcome {
    /// The best graph found (the input graph when nothing improved).
    pub graph: Graph,
    /// Every accepted application, in order.
    pub applied: Vec<AppliedRewrite>,
    /// Run report (iterations, memo counters, stop reason, wall time).
    pub summary: RewriteSearchSummary,
    /// Scheduling effort spent scoring candidates (absorbable into a
    /// pipeline's total via [`ScheduleStats::absorb`]).
    pub stats: ScheduleStats,
}

impl RewriteSearchOutcome {
    /// Whether any rewrite was accepted.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// The iterative, cost-guided rewrite engine (see the module docs).
///
/// # Example
///
/// ```
/// use serenity_core::rewrite::Rewriter;
/// use serenity_core::backend::CompileContext;
/// use serenity_ir::{DType, GraphBuilder, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 8, DType::F32);
/// let l = b.conv1x1(x, 16)?;
/// let r = b.conv1x1(x, 16)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let outcome = Rewriter::standard().cost_guided().run(&g, &CompileContext::unconstrained())?;
/// assert!(outcome.changed());
/// assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
/// # Ok(())
/// # }
/// ```
pub struct RewriteSearch {
    rules: Vec<Arc<dyn RewriteRule + Send + Sync>>,
    config: RewriteSearchConfig,
    scorer: Arc<dyn SchedulerBackend>,
}

impl std::fmt::Debug for RewriteSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewriteSearch")
            .field("rules", &self.rules.iter().map(|r| r.name()).collect::<Vec<_>>())
            .field("config", &self.config)
            .field("scorer", &self.scorer.name())
            .finish()
    }
}

/// One candidate: a rewritten graph plus the chain of applications that
/// produced it.
struct Candidate {
    graph: Graph,
    records: Vec<AppliedRewrite>,
    head: RewriteSite,
    head_names: (String, String),
}

impl RewriteSearch {
    /// A search over `rules` (priority order) with default config and the
    /// default cheap scorer (bounded-width beam search).
    pub fn new(rules: Vec<Arc<dyn RewriteRule + Send + Sync>>) -> Self {
        RewriteSearch {
            rules,
            config: RewriteSearchConfig::default(),
            scorer: Arc::new(BeamBackend::default()),
        }
    }

    /// Replaces the search configuration.
    pub fn config(mut self, config: RewriteSearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the backend that scores candidates. Scoring cost dominates the
    /// search, so a cheap backend (`beam`, the default) is usually right;
    /// the pipeline re-schedules the final winner with its full backend
    /// regardless, so an approximate scorer can mis-rank candidates but
    /// never degrade the compiled result below rewrite-off.
    pub fn score_backend(mut self, backend: Arc<dyn SchedulerBackend>) -> Self {
        self.scorer = backend;
        self
    }

    /// All sites of all rules on `graph`, canonically ordered.
    fn sites(&self, graph: &Graph) -> Vec<(usize, RewriteSite)> {
        let mut sites: Vec<(usize, RewriteSite)> = self
            .rules
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.find(graph).into_iter().map(move |s| (i, s)))
            .collect();
        sites.sort_by_key(|(i, s)| (s.consumer, s.concat, *i));
        sites
    }

    /// Builds the candidate for `site`: applies it, then chains any rewrite
    /// whose concat was *created* by the previous application (an enabling
    /// chain — activation pushdown exposing `concat→conv`, a slab concat
    /// cascading into channel-wise partitioning).
    fn build_candidate(
        &self,
        current: &Graph,
        rule: &Arc<dyn RewriteRule + Send + Sync>,
        site: &RewriteSite,
        max_len: usize,
    ) -> Result<Candidate, GraphError> {
        let head_names =
            (current.node(site.concat).name.clone(), current.node(site.consumer).name.clone());
        let mut records = vec![AppliedRewrite {
            rule: site.rule,
            concat: head_names.0.clone(),
            consumer: head_names.1.clone(),
            branches: site.branches,
        }];
        let mut delta = rule.apply_delta(current, site)?;
        while records.len() < max_len {
            let Some((next_rule, next_site)) = self.rules.iter().find_map(|r| {
                r.find(&delta.graph)
                    .into_iter()
                    .find(|s| delta.added.contains(&s.concat))
                    .map(|s| (r, s))
            }) else {
                break;
            };
            records.push(AppliedRewrite {
                rule: next_site.rule,
                concat: delta.graph.node(next_site.concat).name.clone(),
                consumer: delta.graph.node(next_site.consumer).name.clone(),
                branches: next_site.branches,
            });
            delta = next_rule.apply_delta(&delta.graph, &next_site)?;
        }
        Ok(Candidate { graph: delta.graph, records, head: site.clone(), head_names })
    }

    /// Runs the search with no deadline, cancellation, or event sink.
    ///
    /// # Errors
    ///
    /// As [`RewriteSearch::run`].
    pub fn run_unconstrained(&self, graph: &Graph) -> Result<RewriteSearchOutcome, ScheduleError> {
        self.run(graph, &CompileContext::unconstrained())
    }

    /// Runs the iterative search on `graph` under `ctx`.
    ///
    /// A graph with no rewrite sites at all returns immediately — no
    /// scheduling happens, and the summary's peak fields are both zero
    /// ("never scored"). A deadline expiring *mid-search* is not an error:
    /// the loop stops and the best graph found so far is returned (with
    /// [`RewriteStop::Deadline`]). Cancellation propagates as
    /// [`ScheduleError::Cancelled`], and scoring failures of the *input*
    /// graph propagate as-is — if the input cannot be scheduled at all the
    /// search has no cost signal to work with.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Cancelled`], or any error scoring the input graph.
    pub fn run(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<RewriteSearchOutcome, ScheduleError> {
        let started = Instant::now();
        // Site-free graphs (every sum-aggregation RandWire, plain CNNs)
        // short-circuit before any scheduling: pattern matching is the only
        // cost, exactly like the blind rewriter's no-match path. The
        // enumeration is reused as iteration 0's site list otherwise.
        let mut sites = self.sites(graph);
        if sites.is_empty() {
            let summary = RewriteSearchSummary {
                iterations: 0,
                candidates_scored: 0,
                applied: 0,
                stop: RewriteStop::FixedPoint,
                memo_hits: 0,
                memo_misses: 0,
                initial_peak_bytes: 0,
                final_peak_bytes: 0,
                kept: false,
                wall: started.elapsed(),
            };
            ctx.emit(CompileEvent::RewriteSearchFinished {
                iterations: 0,
                candidates: 0,
                stop: RewriteStop::FixedPoint,
                memo_hits: 0,
                memo_misses: 0,
                initial_peak_bytes: 0,
                final_peak_bytes: 0,
            });
            return Ok(RewriteSearchOutcome {
                graph: graph.clone(),
                applied: Vec::new(),
                summary,
                stats: ScheduleStats::default(),
            });
        }
        let memo = Arc::new(ScheduleMemo::new());
        let scorer =
            DivideAndConquer::new().backend(Arc::clone(&self.scorer)).memo(Arc::clone(&memo));

        let mut stats = ScheduleStats::default();
        let initial = scorer.schedule_with_ctx(graph, ctx)?;
        stats.absorb(&initial.total_stats);
        let initial_peak = initial.schedule.peak_bytes;

        let mut current = graph.clone();
        let mut current_peak = initial_peak;
        let mut applied: Vec<AppliedRewrite> = Vec::new();
        let mut candidates_scored = 0usize;
        let mut iterations = 0usize;
        // Snapshot at the last *strict* improvement: what the search
        // returns. Plateau (peak-neutral) steps advance `current` so later
        // wins can build on them, but are only banked once they pay off.
        let mut best_graph = graph.clone();
        let mut best_peak = initial_peak;
        let mut best_applied = 0usize;

        let stop = 'search: loop {
            if iterations >= self.config.max_iterations {
                break RewriteStop::IterationCap;
            }
            let remaining_applications = self.config.max_applications.saturating_sub(applied.len());
            if remaining_applications == 0 {
                break RewriteStop::ApplicationCap;
            }
            if sites.is_empty() {
                break RewriteStop::FixedPoint;
            }

            let mut best: Option<(u64, Candidate)> = None;
            let mut losers: Vec<(RewriteSite, String, String, u64)> = Vec::new();
            let mut budget_hit = false;
            for (rule_idx, site) in std::mem::take(&mut sites) {
                if candidates_scored >= self.config.max_candidates {
                    budget_hit = true;
                    break;
                }
                if ctx.check().is_err() {
                    if ctx.options().cancel.is_cancelled() {
                        return Err(ScheduleError::Cancelled);
                    }
                    break 'search RewriteStop::Deadline;
                }
                let candidate = match self.build_candidate(
                    &current,
                    &self.rules[rule_idx],
                    &site,
                    remaining_applications.min(self.config.max_chain),
                ) {
                    Ok(candidate) => candidate,
                    // A site invalidated between find and apply is a rule
                    // bug upstream; here it only costs us the candidate.
                    Err(_) => continue,
                };
                candidates_scored += 1;
                let scored = match scorer.schedule_with_ctx(&candidate.graph, ctx) {
                    Ok(outcome) => outcome,
                    Err(ScheduleError::Cancelled) => return Err(ScheduleError::Cancelled),
                    Err(ScheduleError::DeadlineExceeded { .. }) => {
                        break 'search RewriteStop::Deadline;
                    }
                    // Unschedulable candidate (e.g. backend size cap):
                    // discard it, keep searching.
                    Err(_) => continue,
                };
                stats.absorb(&scored.total_stats);
                let peak = scored.schedule.peak_bytes;
                ctx.emit(CompileEvent::RewriteCandidateScored {
                    rule: candidate.head.rule,
                    concat: candidate.head_names.0.clone(),
                    consumer: candidate.head_names.1.clone(),
                    branches: candidate.head.branches,
                    peak_bytes: peak,
                    current_peak_bytes: current_peak,
                });
                let acceptable = peak <= current_peak;
                let beats_best = best.as_ref().is_none_or(|(b, _)| peak < *b);
                if acceptable && beats_best {
                    if let Some((old_peak, old)) = best.replace((peak, candidate)) {
                        losers.push((old.head, old.head_names.0, old.head_names.1, old_peak));
                    }
                } else {
                    losers.push((
                        candidate.head,
                        candidate.head_names.0,
                        candidate.head_names.1,
                        peak,
                    ));
                }
            }

            for (site, concat, consumer, peak) in losers.drain(..) {
                ctx.emit(CompileEvent::RewriteCandidateRejected {
                    rule: site.rule,
                    concat,
                    consumer,
                    peak_bytes: peak,
                });
            }
            match best {
                Some((peak, winner)) => {
                    ctx.emit(CompileEvent::RewriteCandidateKept {
                        rule: winner.head.rule,
                        concat: winner.head_names.0.clone(),
                        consumer: winner.head_names.1.clone(),
                        iteration: iterations,
                        peak_bytes: peak,
                    });
                    current = winner.graph;
                    current_peak = peak;
                    applied.extend(winner.records);
                    iterations += 1;
                    if current_peak < best_peak {
                        best_graph = current.clone();
                        best_peak = current_peak;
                        best_applied = applied.len();
                    }
                    sites = self.sites(&current);
                }
                None if budget_hit => break RewriteStop::CandidateBudget,
                None => break RewriteStop::FixedPoint,
            }
            if budget_hit {
                break RewriteStop::CandidateBudget;
            }
        };

        // Return the last strictly-improving snapshot, dropping trailing
        // plateau steps that never paid off.
        applied.truncate(best_applied);
        stats.memo_hits = memo.hits();
        stats.memo_misses = memo.misses();
        let summary = RewriteSearchSummary {
            iterations,
            candidates_scored,
            applied: applied.len(),
            stop,
            memo_hits: memo.hits(),
            memo_misses: memo.misses(),
            initial_peak_bytes: initial_peak,
            final_peak_bytes: best_peak,
            kept: !applied.is_empty(),
            wall: started.elapsed(),
        };
        ctx.emit(CompileEvent::RewriteSearchFinished {
            iterations: summary.iterations,
            candidates: summary.candidates_scored,
            stop: summary.stop,
            memo_hits: summary.memo_hits,
            memo_misses: summary.memo_misses,
            initial_peak_bytes: summary.initial_peak_bytes,
            final_peak_bytes: summary.final_peak_bytes,
        });
        Ok(RewriteSearchOutcome { graph: best_graph, applied, summary, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DpBackend;
    use crate::rewrite::Rewriter;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn concat_cell(branches: usize, channels: usize) -> Graph {
        let mut b = GraphBuilder::new("cell");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let ins: Vec<_> = (0..branches).map(|_| b.conv1x1(x, channels).unwrap()).collect();
        let cat = b.concat(&ins).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    #[test]
    fn accepts_only_strict_improvements() {
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed());
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
        assert_eq!(outcome.summary.stop, RewriteStop::FixedPoint);
        assert!(outcome.graph.validate().is_ok());
    }

    #[test]
    fn plain_graph_reaches_fixed_point_unchanged() {
        let mut b = GraphBuilder::new("plain");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let y = b.conv(x, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        let g = b.finish();
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
        assert_eq!(outcome.summary.stop, RewriteStop::FixedPoint);
        assert_eq!(outcome.summary.candidates_scored, 0);
    }

    #[test]
    fn pushdown_chain_reaches_through_activations() {
        // relu between concat and conv: pushdown alone is footprint-neutral,
        // so only the chained candidate (pushdown + channel-wise) can win.
        let mut b = GraphBuilder::new("tail");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let s1 = b.conv1x1(x, 12).unwrap();
        let s2 = b.conv1x1(x, 12).unwrap();
        let s3 = b.conv1x1(x, 12).unwrap();
        let cat = b.concat(&[s1, s2, s3]).unwrap();
        let r = b.relu(cat).unwrap();
        let c = b.conv1x1(r, 8).unwrap();
        b.mark_output(c);
        let g = b.finish();

        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed(), "the enabling chain must fire");
        assert!(outcome.applied.iter().any(|a| a.rule == "activation-pushdown"));
        assert!(outcome.applied.iter().any(|a| a.rule == "channel-wise"));
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
    }

    /// Two independent concat→conv sites feeding one output add.
    fn two_site_cell() -> Graph {
        let mut b = GraphBuilder::new("two");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let mut arms = Vec::new();
        for _ in 0..2 {
            let ins: Vec<_> = (0..3).map(|_| b.conv1x1(x, 16).unwrap()).collect();
            let cat = b.concat(&ins).unwrap();
            arms.push(b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap());
        }
        let out = b.add(&arms).unwrap();
        b.mark_output(out);
        b.finish()
    }

    #[test]
    fn candidate_budget_stops_the_loop() {
        let g = two_site_cell();
        let outcome = Rewriter::standard()
            .cost_guided()
            .config(RewriteSearchConfig { max_candidates: 1, ..Default::default() })
            .run_unconstrained(&g)
            .unwrap();
        assert_eq!(outcome.summary.candidates_scored, 1);
        assert_eq!(outcome.summary.stop, RewriteStop::CandidateBudget);
        // One candidate is a plateau step here (the other arm's concat still
        // dominates); the budget cut the search before it paid off, so the
        // snapshot semantics return the unchanged input.
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
    }

    #[test]
    fn plateau_traversal_rewrites_symmetric_arms() {
        // Neither arm's rewrite improves the max-peak alone; only after both
        // are partitioned does the peak drop. Plateau-tolerant acceptance
        // must find the two-step win.
        let g = two_site_cell();
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed());
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
        assert!(
            outcome.applied.iter().filter(|a| a.rule == "channel-wise").count() >= 2,
            "both arms must be rewritten, got {:?}",
            outcome.applied
        );
    }

    #[test]
    fn application_cap_bounds_chains_too() {
        let g = concat_cell(4, 16);
        let outcome =
            Rewriter::standard().max_applications(1).cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.applied.len() <= 1, "cap must bound total applications");
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard()
            .cost_guided()
            .config(RewriteSearchConfig { max_iterations: 0, ..Default::default() })
            .run_unconstrained(&g)
            .unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
        assert_eq!(outcome.summary.stop, RewriteStop::IterationCap);
    }

    #[test]
    fn search_matches_with_exact_scorer() {
        // With DP scoring, the search result on this cell equals the blind
        // fixpoint's (every blind application here is genuinely beneficial).
        let g = concat_cell(3, 16);
        let blind = Rewriter::standard().rewrite(&g);
        let searched = Rewriter::standard()
            .cost_guided()
            .score_backend(Arc::new(DpBackend::default()))
            .run_unconstrained(&g)
            .unwrap();
        let blind_peak =
            crate::dp::DpScheduler::new().schedule(&blind.graph).unwrap().schedule.peak_bytes;
        let searched_peak =
            crate::dp::DpScheduler::new().schedule(&searched.graph).unwrap().schedule.peak_bytes;
        assert_eq!(searched_peak, blind_peak);
    }

    #[test]
    fn runs_are_deterministic() {
        let g = concat_cell(4, 12);
        let a = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        let b = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.summary.final_peak_bytes, b.summary.final_peak_bytes);
        assert_eq!(a.summary.candidates_scored, b.summary.candidates_scored);
    }

    #[test]
    fn cancellation_propagates() {
        use crate::backend::{CancelToken, CompileOptions};
        let g = concat_cell(3, 16);
        let token = CancelToken::new();
        token.cancel();
        let ctx = CompileContext::new(CompileOptions::new().cancel_token(token));
        let err = Rewriter::standard().cost_guided().run(&g, &ctx).unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
    }
}
