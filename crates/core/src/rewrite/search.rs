//! The cost-guided, iterative rewrite↔schedule search.
//!
//! The paper's Figure 4 flow is *rewrite → schedule*, but §3.3's identity
//! rewrites only pay off when the scheduler confirms they lower the peak —
//! applying every matched site blindly can leave footprint on the table (or,
//! on cells whose concats are already cheap, add nodes for nothing). This
//! module closes the loop, following the iterative graph-optimization
//! formulation of Zhong et al. (2023):
//!
//! 1. Enumerate every rewrite site of every rule on the current graph. After
//!    the first iteration this is **incremental**: an accepted delta's
//!    [`SpliceInfo`](serenity_ir::edit::SpliceInfo) remaps the prior site
//!    list and only the neighborhood of the added nodes is rescanned
//!    ([`RewriteRule::match_at`]), instead of re-running every rule over
//!    every node.
//! 2. Turn each site into a **candidate** graph by splicing the delta in
//!    place (O(site), no whole-graph rebuild). Sites whose rewrite is
//!    footprint-neutral on its own but *enables* another rule (activation
//!    pushdown exposing `concat→conv`, a kernel-wise slab concat feeding a
//!    pointwise conv) are chained with the rewrites they enable, so a
//!    candidate is a maximal enabling chain, not a single blind step. Each
//!    candidate's whole-graph fingerprint is updated incrementally from the
//!    current graph's ([`FingerprintCache`]); structural twins within an
//!    iteration are detected by fingerprint (confirmed exactly) and scored
//!    once.
//! 3. **Score** each candidate by actually scheduling it (divide-and-conquer
//!    with the configured scoring backend). Segments unchanged since any
//!    previous scoring run replay from a [`ScheduleMemo`] instead of being
//!    re-searched. With [`RewriteSearchConfig::threads`] > 1 the iteration's
//!    candidates are scored across `std::thread::scope` workers; each worker
//!    sees the iteration-start memo through a private layer
//!    ([`ScheduleMemo::layered`]) and buffers its events, and the results
//!    are then *replayed* serially in canonical site order — budget
//!    accounting, stats, events, and the winner are computed from the
//!    replay, so parallel runs are bit-identical to serial ones.
//! 4. Accept the best candidate that does not *worsen* the scored peak;
//!    stop when every candidate worsens it (fixed point), on the iteration
//!    cap, the candidate budget, the application cap, or the
//!    [`CompileContext`] deadline. Peak-neutral acceptances traverse
//!    *plateaus*: on a cell with two symmetric concat arms, rewriting either
//!    arm alone leaves the max-peak unchanged and only the second step pays
//!    off. The search **returns the snapshot at the last strict
//!    improvement**, so trailing plateau steps that never paid off are
//!    discarded and the result never has a higher scored peak than the
//!    input. Termination is guaranteed even with neutral steps: every
//!    rewrite strictly shrinks the supply of matchable sites.
//!
//! The search is deterministic: sites are scored in a canonical order, ties
//! keep the earliest site, and all backends are deterministic, so serial and
//! parallel runs return bit-identical graphs, schedules, and summaries at
//! every thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use serenity_ir::fingerprint::{structural_eq, FingerprintCache};
use serenity_ir::{Graph, GraphError, NodeId};

use crate::backend::{BeamBackend, BoundHandle, CompileContext, CompileEvent, SchedulerBackend};
use crate::cache::CompileCache;
use crate::capacity::CapacityTarget;
use crate::divide::DivideAndConquer;
use crate::memo::ScheduleMemo;
use crate::rewrite::{AppliedRewrite, RewriteRule, RewriteSite};
use crate::{ScheduleError, ScheduleStats};

/// Why a [`RewriteSearch`] run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteStop {
    /// Every candidate worsened the scored peak, or no sites remained.
    FixedPoint,
    /// [`RewriteSearchConfig::max_iterations`] accepted candidates were
    /// applied.
    IterationCap,
    /// [`RewriteSearchConfig::max_candidates`] candidates were scored.
    CandidateBudget,
    /// [`RewriteSearchConfig::max_applications`] rewrites were applied.
    ApplicationCap,
    /// The [`CompileContext`] deadline expired mid-search.
    Deadline,
}

impl std::fmt::Display for RewriteStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RewriteStop::FixedPoint => "fixed-point",
            RewriteStop::IterationCap => "iteration-cap",
            RewriteStop::CandidateBudget => "candidate-budget",
            RewriteStop::ApplicationCap => "application-cap",
            RewriteStop::Deadline => "deadline",
        };
        f.write_str(s)
    }
}

/// Knobs of the iterative search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteSearchConfig {
    /// Maximum accepted candidates (one per iteration).
    pub max_iterations: usize,
    /// Total candidate-scoring budget across all iterations (each scored
    /// candidate costs one scheduling run of the scoring backend).
    pub max_candidates: usize,
    /// Maximum rewrite applications overall (chained enabling rewrites
    /// count individually), mirroring
    /// [`Rewriter::max_applications`](crate::rewrite::Rewriter::max_applications).
    pub max_applications: usize,
    /// Maximum length of one enabling chain (site + the rewrites it
    /// exposes) within a single candidate.
    pub max_chain: usize,
    /// Worker threads scoring one iteration's candidate set (1 = serial).
    /// Any thread count returns bit-identical results — parallel scoring is
    /// replayed deterministically — so this is purely a wall-clock knob.
    pub threads: usize,
}

impl Default for RewriteSearchConfig {
    fn default() -> Self {
        RewriteSearchConfig {
            max_iterations: 32,
            max_candidates: 256,
            max_applications: 512,
            max_chain: 4,
            threads: 1,
        }
    }
}

/// Aggregate report of one search run (serializable for CLI/bench output).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteSearchSummary {
    /// Iterations that accepted a candidate.
    pub iterations: usize,
    /// Candidates scored across all iterations.
    pub candidates_scored: usize,
    /// Rewrites applied to produce the final graph.
    pub applied: usize,
    /// Why the loop stopped.
    pub stop: RewriteStop,
    /// Schedule-memo hits across all scoring runs.
    pub memo_hits: u64,
    /// Schedule-memo misses across all scoring runs.
    pub memo_misses: u64,
    /// Scored peak of the input graph, in bytes (zero when the graph had no
    /// rewrite sites and was never scored).
    pub initial_peak_bytes: u64,
    /// Scored peak of the final graph, in bytes (zero when never scored).
    pub final_peak_bytes: u64,
    /// Whether the search's result graph was ultimately adopted. The search
    /// itself sets this to "some rewrite was accepted"; the pipeline flips
    /// it to `false` when its final full-backend comparison rejects the
    /// winner (then `applied`/`final_peak_bytes` describe a *discarded*
    /// candidate and the compiled graph is the original).
    pub kept: bool,
    /// Wall-clock time of the whole search.
    #[serde(with = "crate::schedule::duration_micros")]
    pub wall: Duration,
    /// Wall-clock spent enumerating and rescanning rewrite sites.
    #[serde(with = "crate::schedule::duration_micros")]
    pub site_scan: Duration,
    /// Wall-clock spent building candidate graphs (splices, enabling
    /// chains, incremental fingerprints).
    #[serde(with = "crate::schedule::duration_micros")]
    pub candidate_build: Duration,
}

impl RewriteSearchSummary {
    /// Fraction of segment-scheduling lookups served from the memo.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Candidate-scoring throughput of the whole search, in candidates per
    /// second of search wall time (the rewrite loop's headline metric).
    pub fn candidates_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.candidates_scored as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of a [`RewriteSearch`] run.
#[derive(Debug, Clone)]
pub struct RewriteSearchOutcome {
    /// The best graph found (the input graph when nothing improved).
    pub graph: Graph,
    /// Every accepted application, in order.
    pub applied: Vec<AppliedRewrite>,
    /// Run report (iterations, memo counters, stop reason, wall time).
    pub summary: RewriteSearchSummary,
    /// Scheduling effort spent scoring candidates (absorbable into a
    /// pipeline's total via [`ScheduleStats::absorb`]).
    pub stats: ScheduleStats,
}

impl RewriteSearchOutcome {
    /// Whether any rewrite was accepted.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// The iterative, cost-guided rewrite engine (see the module docs).
///
/// # Example
///
/// ```
/// use serenity_core::rewrite::Rewriter;
/// use serenity_core::backend::CompileContext;
/// use serenity_ir::{DType, GraphBuilder, Padding};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("cell");
/// let x = b.image_input("x", 8, 8, 8, DType::F32);
/// let l = b.conv1x1(x, 16)?;
/// let r = b.conv1x1(x, 16)?;
/// let cat = b.concat(&[l, r])?;
/// let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same)?;
/// b.mark_output(y);
/// let g = b.finish();
///
/// let outcome = Rewriter::standard().cost_guided().run(&g, &CompileContext::unconstrained())?;
/// assert!(outcome.changed());
/// assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
/// # Ok(())
/// # }
/// ```
pub struct RewriteSearch {
    rules: Vec<Arc<dyn RewriteRule + Send + Sync>>,
    config: RewriteSearchConfig,
    scorer: Arc<dyn SchedulerBackend>,
    cache: Option<Arc<CompileCache>>,
}

impl std::fmt::Debug for RewriteSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewriteSearch")
            .field("rules", &self.rules.iter().map(|r| r.name()).collect::<Vec<_>>())
            .field("config", &self.config)
            .field("scorer", &self.scorer.name())
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

/// One candidate: a spliced graph, the chain of applications that produced
/// it, and the splice bookkeeping the search needs afterwards. Names and
/// [`AppliedRewrite`] records for the *head* application are resolved
/// lazily from the current graph — only kept or narrated candidates pay for
/// the string clones.
struct Candidate {
    graph: Graph,
    /// Whole-graph fingerprint, updated incrementally across the chain.
    fp: FingerprintCache,
    /// The head site (ids in the pre-candidate graph).
    head: RewriteSite,
    /// Chain records beyond the head, with names captured from the
    /// intermediate graphs they applied to (chains are rare).
    tail: Vec<AppliedRewrite>,
    /// Pre-candidate id → candidate id, composed across the chain.
    node_map: Vec<Option<NodeId>>,
    /// Nodes created by the chain that survive in the candidate graph.
    added: Vec<NodeId>,
}

impl Candidate {
    /// Number of rewrite applications in this candidate's chain.
    fn applications(&self) -> usize {
        1 + self.tail.len()
    }

    /// Resolves the head application's record against the graph the head
    /// site belongs to.
    fn head_record(&self, current: &Graph) -> AppliedRewrite {
        AppliedRewrite {
            rule: self.head.rule,
            concat: current.node(self.head.concat).name.clone(),
            consumer: current.node(self.head.consumer).name.clone(),
            branches: self.head.branches,
        }
    }

    /// The full application log of this candidate.
    fn records(&self, current: &Graph) -> Vec<AppliedRewrite> {
        let mut records = Vec::with_capacity(self.applications());
        records.push(self.head_record(current));
        records.extend(self.tail.iter().cloned());
        records
    }
}

/// A candidate's comparison key: `(fits, traffic, peak)` under a steering
/// [`CapacityTarget`], `(0, 0, peak)` otherwise — so lexicographic
/// comparison degenerates to the classic peak comparison when no capacity
/// steers the search. Smaller wins.
type ScoreKey = (u64, u64, u64);

/// What scoring one candidate produced (computed by a worker, consumed by
/// the deterministic replay).
//
// `Done` is the overwhelmingly common variant and every instance is
// short-lived scratch consumed by the same iteration's replay — boxing it
// would cost an allocation per scored candidate for nothing.
#[allow(clippy::large_enum_variant)]
enum Scored {
    Done {
        peak: u64,
        /// The candidate's capacity rank; `None` when no steering target is
        /// set.
        rank: Option<ScoreKey>,
        stats: ScheduleStats,
        /// Events the scoring run emitted, buffered for ordered replay.
        events: Vec<CompileEvent>,
        /// The worker's private memo layer, absorbed into the shared memo
        /// during replay (in site order).
        memo_layer: ScheduleMemo,
    },
    Failed(ScheduleError),
}

/// One site's slot in an iteration: the built candidate (if building
/// succeeded), an optional earlier structural twin, and the scoring result.
struct Slot {
    candidate: Option<Candidate>,
    dup_of: Option<usize>,
    result: Option<Scored>,
}

impl RewriteSearch {
    /// A search over `rules` (priority order) with default config and the
    /// default cheap scorer (bounded-width beam search).
    pub fn new(rules: Vec<Arc<dyn RewriteRule + Send + Sync>>) -> Self {
        RewriteSearch {
            rules,
            config: RewriteSearchConfig::default(),
            scorer: Arc::new(BeamBackend::default()),
            cache: None,
        }
    }

    /// Replaces the search configuration.
    pub fn config(mut self, config: RewriteSearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Backs the run's schedule memo with the process-wide `cache`, keyed
    /// by the scoring backend's
    /// [`config_fingerprint`](SchedulerBackend::config_fingerprint):
    /// candidate segments scored by an earlier compile request replay
    /// instead of being re-searched, and this run's scores are published
    /// for later requests. Results stay bit-identical to a cache-free run.
    pub fn cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the backend that scores candidates. Scoring cost dominates the
    /// search, so a cheap backend (`beam`, the default) is usually right;
    /// the pipeline re-schedules the final winner with its full backend
    /// regardless, so an approximate scorer can mis-rank candidates but
    /// never degrade the compiled result below rewrite-off.
    pub fn score_backend(mut self, backend: Arc<dyn SchedulerBackend>) -> Self {
        self.scorer = backend;
        self
    }

    /// All sites of all rules on `graph`, canonically ordered.
    fn sites(&self, graph: &Graph) -> Vec<(usize, RewriteSite)> {
        let mut sites: Vec<(usize, RewriteSite)> = self
            .rules
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.find(graph).into_iter().map(move |s| (i, s)))
            .collect();
        sites.sort_by_key(|(i, s)| (s.consumer, s.concat, *i));
        sites
    }

    /// Sites on `graph` after accepting `winner`, computed incrementally:
    /// the prior site list is remapped through the winner's composed node
    /// map and re-validated, and only consumers adjacent to the winner's
    /// added nodes are scanned fresh — every other node's neighborhood is
    /// untouched by the splice, so no new site can appear there. Equal to a
    /// full [`RewriteSearch::sites`] scan (debug-asserted).
    fn rescan_after(
        &self,
        graph: &Graph,
        prior: &[(usize, RewriteSite)],
        winner: &Candidate,
    ) -> Vec<(usize, RewriteSite)> {
        let mut consumers: Vec<NodeId> = Vec::with_capacity(prior.len() + winner.added.len() * 2);
        for (_, site) in prior {
            if let Some(v) = winner.node_map.get(site.consumer.index()).copied().flatten() {
                consumers.push(v);
            }
        }
        for &a in &winner.added {
            consumers.push(a);
            consumers.extend_from_slice(graph.succs(a));
        }
        consumers.sort_unstable();
        consumers.dedup();
        let mut sites: Vec<(usize, RewriteSite)> = Vec::new();
        for &v in &consumers {
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(site) = rule.match_at(graph, v) {
                    sites.push((i, site));
                }
            }
        }
        sites.sort_by_key(|(i, s)| (s.consumer, s.concat, *i));
        debug_assert_eq!(
            sites,
            self.sites(graph),
            "incremental site rescan must equal a full scan"
        );
        sites
    }

    /// The first enabling site exposed by `added` nodes: for each rule in
    /// priority order, the lowest-consumer site whose concat is one of the
    /// added nodes (the same selection a full `find` over the graph made
    /// before site discovery became incremental).
    fn enabling_site(
        &self,
        graph: &Graph,
        added: &[NodeId],
    ) -> Option<(&Arc<dyn RewriteRule + Send + Sync>, RewriteSite)> {
        for rule in &self.rules {
            let mut best: Option<RewriteSite> = None;
            for &a in added {
                for &v in graph.succs(a) {
                    if best.as_ref().is_some_and(|b| b.consumer <= v) {
                        continue;
                    }
                    if let Some(site) = rule.match_at(graph, v) {
                        if site.concat == a {
                            best = Some(site);
                        }
                    }
                }
            }
            if let Some(site) = best {
                return Some((rule, site));
            }
        }
        None
    }

    /// Builds the candidate for `site`: splices it in place, then chains any
    /// rewrite whose concat was *created* by the previous application (an
    /// enabling chain — activation pushdown exposing `concat→conv`, a slab
    /// concat cascading into channel-wise partitioning). The candidate's
    /// fingerprint and node map are maintained incrementally across the
    /// chain.
    fn build_candidate(
        &self,
        current: &Graph,
        current_fp: &FingerprintCache,
        rule: &Arc<dyn RewriteRule + Send + Sync>,
        site: &RewriteSite,
        max_len: usize,
    ) -> Result<Candidate, GraphError> {
        let mut delta = rule.apply_delta(current, site)?;
        let mut fp = current_fp.update(&delta.graph, delta.splice.first_changed);
        let mut node_map = std::mem::take(&mut delta.splice.node_map);
        let mut added = delta.added.clone();
        let mut tail: Vec<AppliedRewrite> = Vec::new();
        while 1 + tail.len() < max_len {
            let Some((next_rule, next_site)) = self.enabling_site(&delta.graph, &added) else {
                break;
            };
            tail.push(AppliedRewrite {
                rule: next_site.rule,
                concat: delta.graph.node(next_site.concat).name.clone(),
                consumer: delta.graph.node(next_site.consumer).name.clone(),
                branches: next_site.branches,
            });
            let next = next_rule.apply_delta(&delta.graph, &next_site)?;
            fp = fp.update(&next.graph, next.splice.first_changed);
            for slot in node_map.iter_mut() {
                *slot = slot.and_then(|v| next.splice.node_map[v.index()]);
            }
            added = added
                .iter()
                .filter_map(|a| next.splice.node_map[a.index()])
                .chain(next.added.iter().copied())
                .collect();
            delta = next;
        }
        Ok(Candidate { graph: delta.graph, fp, head: site.clone(), tail, node_map, added })
    }

    /// Scores one candidate: a fresh divide-and-conquer run of the scoring
    /// backend over a private memo layer, with events buffered when a sink
    /// is installed.
    fn score_candidate(
        &self,
        candidate: &Candidate,
        bound_seed: Option<u64>,
        target: Option<CapacityTarget>,
        memo: &Arc<ScheduleMemo>,
        ctx: &CompileContext,
    ) -> Scored {
        let events: Arc<Mutex<Vec<CompileEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let child_ctx = if ctx.has_sink() {
            let buffer = Arc::clone(&events);
            ctx.with_event_sink(Some(Arc::new(move |e: &CompileEvent| {
                buffer.lock().expect("event buffer").push(e.clone());
            })))
        } else {
            ctx.with_event_sink(None)
        };
        // The search only accepts candidates scoring `<=` the current key,
        // so seed the scorer with the iteration-start peak as a *tie-losing*
        // incumbent: states strictly above it are pruned (they cannot be
        // accepted), while a candidate that merely ties — a plateau step the
        // search still wants — completes untouched. A candidate cut off by
        // the bound surfaces as `Failed(BoundBeaten)` and is discarded by
        // the deterministic replay exactly like any unschedulable one.
        // Under a steering capacity target the caller passes `None` while
        // the current graph spills: a higher-peak candidate can then still
        // win on traffic, so the peak bound must not prune at all.
        let child_ctx = match bound_seed {
            Some(peak) => child_ctx.with_bound(Some(BoundHandle::seeded_weak(peak))),
            None => child_ctx.with_bound(None),
        };
        let layer = Arc::new(ScheduleMemo::layered(Arc::clone(memo)));
        // A panicking scoring backend must not take the worker (and with it
        // the whole search) down: contain the unwind and fail the candidate,
        // which the replay loop then skips deterministically.
        let outcome = {
            let scorer =
                DivideAndConquer::new().backend(Arc::clone(&self.scorer)).memo(Arc::clone(&layer));
            catch_unwind(AssertUnwindSafe(|| {
                scorer.schedule_with_ctx(&candidate.graph, &child_ctx)
            }))
        };
        match outcome {
            Ok(Ok(scored)) => {
                let rank = match target {
                    Some(t) => match crate::capacity::assess_for_driver(
                        &candidate.graph,
                        &scored.schedule.order,
                        t,
                    ) {
                        Ok(report) => Some(report.rank(scored.schedule.peak_bytes)),
                        Err(err) => return Scored::Failed(err),
                    },
                    None => None,
                };
                let memo_layer = Arc::try_unwrap(layer).expect("scorer dropped its memo handle");
                Scored::Done {
                    peak: scored.schedule.peak_bytes,
                    rank,
                    stats: scored.total_stats,
                    events: std::mem::take(&mut events.lock().expect("event buffer")),
                    memo_layer,
                }
            }
            Ok(Err(err)) => Scored::Failed(err),
            Err(payload) => Scored::Failed(ScheduleError::Panicked {
                detail: crate::fault::panic_message(payload.as_ref()),
            }),
        }
    }

    /// Builds and scores one iteration's candidates. Building and twin
    /// detection are serial and deterministic; scoring fans out across
    /// `threads` workers (inline when 1). Only the first
    /// `remaining_budget` successfully built sites are processed — exactly
    /// the set a serial sweep would have scored before the budget tripped.
    #[allow(clippy::too_many_arguments)]
    fn build_and_score(
        &self,
        current: &Graph,
        current_fp: &FingerprintCache,
        site_list: &[(usize, RewriteSite)],
        remaining_budget: usize,
        max_chain: usize,
        bound_seed: Option<u64>,
        target: Option<CapacityTarget>,
        memo: &Arc<ScheduleMemo>,
        ctx: &CompileContext,
        candidate_build: &mut Duration,
    ) -> Vec<Slot> {
        // Phase 1 (serial): splice the candidates and detect structural
        // twins via the incremental whole-graph fingerprint (confirmed with
        // an exact structural compare, so collisions cannot alias).
        let built_at = Instant::now();
        let mut slots: Vec<Slot> = Vec::with_capacity(site_list.len());
        let mut built_ok = 0usize;
        for (rule_idx, site) in site_list {
            if built_ok >= remaining_budget {
                break; // replay stops here too: candidate budget
            }
            let candidate = self
                .build_candidate(current, current_fp, &self.rules[*rule_idx], site, max_chain)
                .ok();
            built_ok += usize::from(candidate.is_some());
            let dup_of = candidate.as_ref().and_then(|c| {
                slots.iter().position(|other| {
                    other.candidate.as_ref().is_some_and(|o| {
                        o.fp.hash() == c.fp.hash() && structural_eq(&o.graph, &c.graph)
                    })
                })
            });
            slots.push(Slot { candidate, dup_of, result: None });
        }
        *candidate_build += built_at.elapsed();

        // Phase 2 (parallel): score each twin-free representative once.
        let reps: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.candidate.is_some() && s.dup_of.is_none())
            .map(|(i, _)| i)
            .collect();
        let threads = self.config.threads.max(1).min(reps.len().max(1));
        if threads <= 1 {
            for &i in &reps {
                let scored = self.score_candidate(
                    slots[i].candidate.as_ref().expect("rep built"),
                    bound_seed,
                    target,
                    memo,
                    ctx,
                );
                slots[i].result = Some(scored);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let results: Vec<Mutex<Option<Scored>>> =
                reps.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let at = cursor.fetch_add(1, Ordering::Relaxed);
                        if at >= reps.len() {
                            break;
                        }
                        let slot = &slots[reps[at]];
                        let scored = self.score_candidate(
                            slot.candidate.as_ref().expect("rep built"),
                            bound_seed,
                            target,
                            memo,
                            ctx,
                        );
                        *results[at].lock().expect("result slot") = Some(scored);
                    });
                }
            });
            for (at, &i) in reps.iter().enumerate() {
                slots[i].result = results[at].lock().expect("result slot").take();
            }
        }
        slots
    }

    /// Runs the search with no deadline, cancellation, or event sink.
    ///
    /// # Errors
    ///
    /// As [`RewriteSearch::run`].
    pub fn run_unconstrained(&self, graph: &Graph) -> Result<RewriteSearchOutcome, ScheduleError> {
        self.run(graph, &CompileContext::unconstrained())
    }

    /// Runs the iterative search on `graph` under `ctx`.
    ///
    /// A graph with no rewrite sites at all returns immediately — no
    /// scheduling happens, and the summary's peak fields are both zero
    /// ("never scored"). A deadline expiring *mid-search* is not an error:
    /// the loop stops and the best graph found so far is returned (with
    /// [`RewriteStop::Deadline`]). Cancellation propagates as
    /// [`ScheduleError::Cancelled`] — including from scoring worker threads
    /// — and scoring failures of the *input* graph propagate as-is — if the
    /// input cannot be scheduled at all the search has no cost signal to
    /// work with.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Cancelled`], or any error scoring the input graph.
    pub fn run(
        &self,
        graph: &Graph,
        ctx: &CompileContext,
    ) -> Result<RewriteSearchOutcome, ScheduleError> {
        let started = Instant::now();
        let mut site_scan = Duration::ZERO;
        let mut candidate_build = Duration::ZERO;
        // Site-free graphs (every sum-aggregation RandWire, plain CNNs)
        // short-circuit before any scheduling: pattern matching is the only
        // cost, exactly like the blind rewriter's no-match path. The
        // enumeration is reused as iteration 0's site list otherwise.
        let scan_at = Instant::now();
        let mut sites = self.sites(graph);
        site_scan += scan_at.elapsed();
        if sites.is_empty() {
            let summary = RewriteSearchSummary {
                iterations: 0,
                candidates_scored: 0,
                applied: 0,
                stop: RewriteStop::FixedPoint,
                memo_hits: 0,
                memo_misses: 0,
                initial_peak_bytes: 0,
                final_peak_bytes: 0,
                kept: false,
                wall: started.elapsed(),
                site_scan,
                candidate_build,
            };
            ctx.emit(CompileEvent::RewriteSearchFinished {
                iterations: 0,
                candidates: 0,
                stop: RewriteStop::FixedPoint,
                memo_hits: 0,
                memo_misses: 0,
                initial_peak_bytes: 0,
                final_peak_bytes: 0,
            });
            return Ok(RewriteSearchOutcome {
                graph: graph.clone(),
                applied: Vec::new(),
                summary,
                stats: ScheduleStats::default(),
            });
        }
        let target = ctx.capacity().filter(CapacityTarget::steers_search);
        // A capacity-sensitive scorer (the portfolio) can pick different
        // winners per capacity under the same config fingerprint, so the
        // memo key is salted exactly like the pipeline's cache key.
        let scorer_fingerprint =
            self.scorer.config_fingerprint() ^ target.map_or(0, |t| t.cache_salt());
        let memo = Arc::new(match &self.cache {
            Some(cache) => ScheduleMemo::backed(Arc::clone(cache), scorer_fingerprint),
            None => ScheduleMemo::new(),
        });
        let scorer =
            DivideAndConquer::new().backend(Arc::clone(&self.scorer)).memo(Arc::clone(&memo));

        let mut stats = ScheduleStats::default();
        let initial = scorer.schedule_with_ctx(graph, ctx)?;
        stats.absorb(&initial.total_stats);
        let initial_peak = initial.schedule.peak_bytes;
        let initial_key: ScoreKey = match target {
            Some(t) => crate::capacity::assess_for_driver(graph, &initial.schedule.order, t)?
                .rank(initial_peak),
            None => (0, 0, initial_peak),
        };

        let mut current = graph.clone();
        let mut current_fp = FingerprintCache::new(graph);
        let mut current_peak = initial_peak;
        let mut current_key = initial_key;
        let mut applied: Vec<AppliedRewrite> = Vec::new();
        let mut candidates_scored = 0usize;
        let mut iterations = 0usize;
        // Snapshot at the last *strict* improvement: what the search
        // returns. Plateau (key-neutral) steps advance `current` so later
        // wins can build on them, but are only banked once they pay off.
        let mut best_graph = graph.clone();
        let mut best_peak = initial_peak;
        let mut best_key = initial_key;
        let mut best_applied = 0usize;

        let stop = 'search: loop {
            if iterations >= self.config.max_iterations {
                break RewriteStop::IterationCap;
            }
            let remaining_applications = self.config.max_applications.saturating_sub(applied.len());
            if remaining_applications == 0 {
                break RewriteStop::ApplicationCap;
            }
            if sites.is_empty() {
                break RewriteStop::FixedPoint;
            }
            if ctx.options().cancel.is_cancelled() {
                return Err(ScheduleError::Cancelled);
            }
            if ctx.check().is_err() {
                break RewriteStop::Deadline;
            }

            let site_list = std::mem::take(&mut sites);
            let remaining_budget = self.config.max_candidates.saturating_sub(candidates_scored);
            // Seed the scorer's pruning bound only while the current graph
            // fits (or no capacity steers): against a spilling current, a
            // higher-peak candidate can still win on traffic.
            let bound_seed = (current_key.0 == 0).then_some(current_peak);
            let mut slots = self.build_and_score(
                &current,
                &current_fp,
                &site_list,
                remaining_budget,
                remaining_applications.min(self.config.max_chain),
                bound_seed,
                target,
                &memo,
                ctx,
                &mut candidate_build,
            );

            // Deterministic replay in canonical site order: budget
            // accounting, stats, events, memo merging, and winner selection
            // all happen here, so any thread count is bit-identical.
            let mut best: Option<(ScoreKey, usize)> = None;
            let mut losers: Vec<usize> = Vec::new();
            let mut budget_hit = slots.len() < site_list.len();
            for idx in 0..slots.len() {
                if candidates_scored >= self.config.max_candidates {
                    budget_hit = true;
                    break;
                }
                if slots[idx].candidate.is_none() {
                    // A site invalidated between find and apply is a rule
                    // bug upstream; here it only costs us the candidate.
                    continue;
                }
                candidates_scored += 1;
                let source = slots[idx].dup_of.unwrap_or(idx);
                let (peak, rank, scored_stats) = match slots[source].result.as_ref() {
                    Some(Scored::Done { peak, rank, stats, .. }) => (*peak, *rank, *stats),
                    Some(Scored::Failed(ScheduleError::Cancelled)) => {
                        return Err(ScheduleError::Cancelled);
                    }
                    Some(Scored::Failed(ScheduleError::DeadlineExceeded { .. })) => {
                        break 'search RewriteStop::Deadline;
                    }
                    // Cut off by the incumbent bound: the candidate provably
                    // scores worse than the current peak, which the search
                    // would have rejected anyway — a saved schedule, not a
                    // lost candidate.
                    Some(Scored::Failed(ScheduleError::BoundBeaten { .. })) => {
                        stats.bound_beaten_exits += 1;
                        continue;
                    }
                    // Unschedulable candidate (e.g. backend size cap):
                    // discard it, keep searching.
                    Some(Scored::Failed(_)) => continue,
                    None => unreachable!("every built slot's representative was scored"),
                };
                if source == idx {
                    // First occurrence: replay the buffered scoring events
                    // and fold the worker's memo layer into the shared memo.
                    if let Some(Scored::Done { events, memo_layer, .. }) = slots[idx].result.take()
                    {
                        for event in &events {
                            ctx.emit(event.clone());
                        }
                        memo.absorb(memo_layer);
                        slots[idx].result = Some(Scored::Done {
                            peak,
                            rank,
                            stats: scored_stats,
                            events: Vec::new(),
                            memo_layer: ScheduleMemo::new(),
                        });
                    }
                }
                stats.absorb(&scored_stats);
                if ctx.has_sink() {
                    let candidate = slots[idx].candidate.as_ref().expect("slot built");
                    ctx.emit(CompileEvent::RewriteCandidateScored {
                        rule: candidate.head.rule,
                        concat: current.node(candidate.head.concat).name.clone(),
                        consumer: current.node(candidate.head.consumer).name.clone(),
                        branches: candidate.head.branches,
                        peak_bytes: peak,
                        current_peak_bytes: current_peak,
                    });
                }
                let key = rank.unwrap_or((0, 0, peak));
                let acceptable = key <= current_key;
                let beats_best = best.as_ref().is_none_or(|(b, _)| key < *b);
                if acceptable && beats_best {
                    if let Some((_, old)) = best.replace((key, idx)) {
                        losers.push(old);
                    }
                } else {
                    losers.push(idx);
                }
            }

            if ctx.has_sink() {
                for idx in losers.drain(..) {
                    let candidate = slots[idx].candidate.as_ref().expect("loser was built");
                    let peak = match slots[slots[idx].dup_of.unwrap_or(idx)].result.as_ref() {
                        Some(Scored::Done { peak, .. }) => *peak,
                        _ => continue,
                    };
                    ctx.emit(CompileEvent::RewriteCandidateRejected {
                        rule: candidate.head.rule,
                        concat: current.node(candidate.head.concat).name.clone(),
                        consumer: current.node(candidate.head.consumer).name.clone(),
                        peak_bytes: peak,
                    });
                }
            }
            match best {
                Some((key, winner_idx)) => {
                    let winner = slots[winner_idx].candidate.take().expect("winner slot was built");
                    if ctx.has_sink() {
                        ctx.emit(CompileEvent::RewriteCandidateKept {
                            rule: winner.head.rule,
                            concat: current.node(winner.head.concat).name.clone(),
                            consumer: current.node(winner.head.consumer).name.clone(),
                            iteration: iterations,
                            peak_bytes: key.2,
                        });
                    }
                    applied.extend(winner.records(&current));
                    let scan_at = Instant::now();
                    sites = self.rescan_after(&winner.graph, &site_list, &winner);
                    site_scan += scan_at.elapsed();
                    current = winner.graph;
                    current_fp = winner.fp;
                    current_peak = key.2;
                    current_key = key;
                    iterations += 1;
                    if current_key < best_key {
                        best_graph = current.clone();
                        best_peak = current_peak;
                        best_key = current_key;
                        best_applied = applied.len();
                    }
                }
                None if budget_hit => break RewriteStop::CandidateBudget,
                None => break RewriteStop::FixedPoint,
            }
            if budget_hit {
                break RewriteStop::CandidateBudget;
            }
        };

        // Return the last strictly-improving snapshot, dropping trailing
        // plateau steps that never paid off.
        applied.truncate(best_applied);
        let summary = RewriteSearchSummary {
            iterations,
            candidates_scored,
            applied: applied.len(),
            stop,
            memo_hits: stats.memo_hits,
            memo_misses: stats.memo_misses,
            initial_peak_bytes: initial_peak,
            final_peak_bytes: best_peak,
            kept: !applied.is_empty(),
            wall: started.elapsed(),
            site_scan,
            candidate_build,
        };
        ctx.emit(CompileEvent::RewriteSearchFinished {
            iterations: summary.iterations,
            candidates: summary.candidates_scored,
            stop: summary.stop,
            memo_hits: summary.memo_hits,
            memo_misses: summary.memo_misses,
            initial_peak_bytes: summary.initial_peak_bytes,
            final_peak_bytes: summary.final_peak_bytes,
        });
        Ok(RewriteSearchOutcome { graph: best_graph, applied, summary, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DpBackend;
    use crate::rewrite::Rewriter;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn concat_cell(branches: usize, channels: usize) -> Graph {
        let mut b = GraphBuilder::new("cell");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let ins: Vec<_> = (0..branches).map(|_| b.conv1x1(x, channels).unwrap()).collect();
        let cat = b.concat(&ins).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    #[test]
    fn accepts_only_strict_improvements() {
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed());
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
        assert_eq!(outcome.summary.stop, RewriteStop::FixedPoint);
        assert!(outcome.graph.validate().is_ok());
    }

    #[test]
    fn plain_graph_reaches_fixed_point_unchanged() {
        let mut b = GraphBuilder::new("plain");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let y = b.conv(x, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        let g = b.finish();
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
        assert_eq!(outcome.summary.stop, RewriteStop::FixedPoint);
        assert_eq!(outcome.summary.candidates_scored, 0);
    }

    #[test]
    fn pushdown_chain_reaches_through_activations() {
        // relu between concat and conv: pushdown alone is footprint-neutral,
        // so only the chained candidate (pushdown + channel-wise) can win.
        let mut b = GraphBuilder::new("tail");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let s1 = b.conv1x1(x, 12).unwrap();
        let s2 = b.conv1x1(x, 12).unwrap();
        let s3 = b.conv1x1(x, 12).unwrap();
        let cat = b.concat(&[s1, s2, s3]).unwrap();
        let r = b.relu(cat).unwrap();
        let c = b.conv1x1(r, 8).unwrap();
        b.mark_output(c);
        let g = b.finish();

        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed(), "the enabling chain must fire");
        assert!(outcome.applied.iter().any(|a| a.rule == "activation-pushdown"));
        assert!(outcome.applied.iter().any(|a| a.rule == "channel-wise"));
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
    }

    /// Two independent concat→conv sites feeding one output add.
    fn two_site_cell() -> Graph {
        let mut b = GraphBuilder::new("two");
        let x = b.image_input("x", 8, 8, 8, DType::F32);
        let mut arms = Vec::new();
        for _ in 0..2 {
            let ins: Vec<_> = (0..3).map(|_| b.conv1x1(x, 16).unwrap()).collect();
            let cat = b.concat(&ins).unwrap();
            arms.push(b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap());
        }
        let out = b.add(&arms).unwrap();
        b.mark_output(out);
        b.finish()
    }

    #[test]
    fn candidate_budget_stops_the_loop() {
        let g = two_site_cell();
        let outcome = Rewriter::standard()
            .cost_guided()
            .config(RewriteSearchConfig { max_candidates: 1, ..Default::default() })
            .run_unconstrained(&g)
            .unwrap();
        assert_eq!(outcome.summary.candidates_scored, 1);
        assert_eq!(outcome.summary.stop, RewriteStop::CandidateBudget);
        // One candidate is a plateau step here (the other arm's concat still
        // dominates); the budget cut the search before it paid off, so the
        // snapshot semantics return the unchanged input.
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
    }

    #[test]
    fn plateau_traversal_rewrites_symmetric_arms() {
        // Neither arm's rewrite improves the max-peak alone; only after both
        // are partitioned does the peak drop. Plateau-tolerant acceptance
        // must find the two-step win.
        let g = two_site_cell();
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.changed());
        assert!(outcome.summary.final_peak_bytes < outcome.summary.initial_peak_bytes);
        assert!(
            outcome.applied.iter().filter(|a| a.rule == "channel-wise").count() >= 2,
            "both arms must be rewritten, got {:?}",
            outcome.applied
        );
    }

    #[test]
    fn application_cap_bounds_chains_too() {
        let g = concat_cell(4, 16);
        let outcome =
            Rewriter::standard().max_applications(1).cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.applied.len() <= 1, "cap must bound total applications");
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard()
            .cost_guided()
            .config(RewriteSearchConfig { max_iterations: 0, ..Default::default() })
            .run_unconstrained(&g)
            .unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
        assert_eq!(outcome.summary.stop, RewriteStop::IterationCap);
    }

    #[test]
    fn search_matches_with_exact_scorer() {
        // With DP scoring, the search result on this cell equals the blind
        // fixpoint's (every blind application here is genuinely beneficial).
        let g = concat_cell(3, 16);
        let blind = Rewriter::standard().rewrite(&g);
        let searched = Rewriter::standard()
            .cost_guided()
            .score_backend(Arc::new(DpBackend::default()))
            .run_unconstrained(&g)
            .unwrap();
        let blind_peak =
            crate::dp::DpScheduler::new().schedule(&blind.graph).unwrap().schedule.peak_bytes;
        let searched_peak =
            crate::dp::DpScheduler::new().schedule(&searched.graph).unwrap().schedule.peak_bytes;
        assert_eq!(searched_peak, blind_peak);
    }

    #[test]
    fn runs_are_deterministic() {
        let g = concat_cell(4, 12);
        let a = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        let b = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.summary.final_peak_bytes, b.summary.final_peak_bytes);
        assert_eq!(a.summary.candidates_scored, b.summary.candidates_scored);
    }

    #[test]
    fn cancellation_propagates() {
        use crate::backend::{CancelToken, CompileOptions};
        let g = concat_cell(3, 16);
        let token = CancelToken::new();
        token.cancel();
        let ctx = CompileContext::new(CompileOptions::new().cancel_token(token));
        let err = Rewriter::standard().cost_guided().run(&g, &ctx).unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
    }

    /// Scores untouched graphs via beam search but panics on any graph
    /// containing a partitioned node — i.e. on every rewrite candidate.
    struct PanicOnRewritten {
        inner: BeamBackend,
    }

    impl SchedulerBackend for PanicOnRewritten {
        fn name(&self) -> &str {
            "panic-on-rewritten"
        }

        fn schedule(
            &self,
            graph: &Graph,
            ctx: &CompileContext,
        ) -> Result<crate::backend::BackendOutcome, ScheduleError> {
            if graph.nodes().any(|n| n.name.contains("_part")) {
                panic!("deliberate scorer panic");
            }
            self.inner.schedule(graph, ctx)
        }
    }

    #[test]
    fn panicking_scorer_fails_the_candidate_not_the_search() {
        // Every candidate's scoring panics; the panic is contained, the
        // candidates are all discarded, and the search converges on the
        // unchanged input instead of unwinding.
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard()
            .cost_guided()
            .score_backend(Arc::new(PanicOnRewritten { inner: BeamBackend::default() }))
            .run_unconstrained(&g)
            .unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
        assert_eq!(outcome.summary.stop, RewriteStop::FixedPoint);
    }

    #[test]
    fn panicking_scorer_is_contained_on_worker_threads() {
        // Same containment under the scoped worker pool: no worker unwind
        // may poison the scope or abort the process.
        let g = two_site_cell();
        let outcome = Rewriter::standard()
            .cost_guided()
            .config(RewriteSearchConfig { threads: 4, ..Default::default() })
            .score_backend(Arc::new(PanicOnRewritten { inner: BeamBackend::default() }))
            .run_unconstrained(&g)
            .unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.graph, g);
    }

    #[test]
    fn throughput_metrics_are_populated() {
        let g = concat_cell(3, 16);
        let outcome = Rewriter::standard().cost_guided().run_unconstrained(&g).unwrap();
        assert!(outcome.summary.candidates_per_sec() > 0.0);
        assert!(outcome.summary.candidate_build > Duration::ZERO);
        assert!(outcome.summary.site_scan > Duration::ZERO);
    }
}
