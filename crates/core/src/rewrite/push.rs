//! Activation pushdown: `act(concat(x₁…xₖ)) → concat(act(x₁)…act(xₖ))`.
//!
//! Purely element-wise activations (ReLU, sigmoid) commute with
//! concatenation, so pushing them *through* a concat is an identity rewrite.
//! On its own it neither helps nor hurts the footprint (shapes are
//! unchanged), but it **exposes** `concat → conv` patterns that were hidden
//! behind an activation — exactly the situation in DARTS-style cells, where
//! a cell's output concat is consumed by the next cell's
//! `ReLU → 1×1 conv → BN` preprocessing. After pushdown, channel-wise
//! partitioning (§3.3) applies to the now-adjacent `concat → conv` pair.

use serenity_ir::edit::GraphEdit;
use serenity_ir::{Graph, GraphError, NodeId, Op};

use super::{RewriteDelta, RewriteRule, RewriteSite};

/// The activation-pushdown rule (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActivationPushdownRule;

fn is_pushable(op: &Op) -> bool {
    matches!(op, Op::Relu | Op::Sigmoid)
}

impl RewriteRule for ActivationPushdownRule {
    fn name(&self) -> &'static str {
        "activation-pushdown"
    }

    fn find(&self, graph: &Graph) -> Vec<RewriteSite> {
        graph.node_ids().filter_map(|v| self.match_at(graph, v)).collect()
    }

    fn match_at(&self, graph: &Graph, consumer: NodeId) -> Option<RewriteSite> {
        if !is_pushable(&graph.node(consumer).op) {
            return None;
        }
        let preds = graph.preds(consumer);
        if preds.len() != 1 {
            return None;
        }
        let concat = preds[0];
        // Only materializing concats: pushing through a slab concat
        // would force its members to materialize again.
        let Op::Concat { axis } = graph.node(concat).op else {
            return None;
        };
        if axis != 3 || graph.succs(concat).len() != 1 || graph.explicit_outputs().contains(&concat)
        {
            return None;
        }
        let branches = graph.preds(concat).len();
        if branches < 2 {
            return None;
        }
        Some(RewriteSite { rule: self.name(), concat, consumer, branches })
    }

    fn apply_delta(&self, graph: &Graph, site: &RewriteSite) -> Result<RewriteDelta, GraphError> {
        let act = &graph.node(site.consumer).op;
        if !is_pushable(act) {
            return Err(GraphError::InvalidOrder {
                detail: format!("site consumer {} is not a pushable activation", site.consumer),
            });
        }
        let Op::Concat { axis } = graph.node(site.concat).op else {
            return Err(GraphError::InvalidOrder {
                detail: format!("site anchor {} is not a concat", site.concat),
            });
        };
        let branches: &[NodeId] = graph.preds(site.concat);
        let act_name = &graph.node(site.consumer).name;

        // Splice in place: one pushed activation per branch, re-concatenated
        // at the activation's position — O(branches).
        let mut edit = GraphEdit::new(graph, site.consumer);
        let mut pushed = Vec::with_capacity(branches.len());
        for (i, &x) in branches.iter().enumerate() {
            let id = edit.add_node(format!("{act_name}_push{i}"), act.clone(), &[x])?;
            pushed.push(id);
        }
        let concat = edit.add_node(format!("{act_name}_cat"), Op::Concat { axis }, &pushed)?;
        edit.redirect(site.consumer, concat);
        edit.remove(site.concat);
        edit.remove(site.consumer);
        let (out, splice) = edit.finish()?;
        Ok(RewriteDelta {
            graph: out,
            removed: vec![site.concat, site.consumer],
            added: splice.added.clone(),
            splice,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Rewriter;
    use serenity_ir::{DType, GraphBuilder};

    /// DARTS-style tail: cell concat consumed by relu → 1x1 conv → bn.
    fn darts_tail() -> Graph {
        let mut b = GraphBuilder::new("tail");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let s1 = b.conv1x1(x, 6).unwrap();
        let s2 = b.conv1x1(x, 6).unwrap();
        let s3 = b.conv1x1(x, 6).unwrap();
        let cat = b.concat(&[s1, s2, s3]).unwrap();
        let r = b.relu(cat).unwrap();
        let c = b.conv1x1(r, 8).unwrap();
        let bn = b.batch_norm(c).unwrap();
        b.mark_output(bn);
        b.finish()
    }

    #[test]
    fn finds_hidden_pattern() {
        let g = darts_tail();
        // Channel-wise alone cannot match: the conv's pred is the relu.
        assert!(crate::rewrite::ChannelWiseRule.find(&g).is_empty());
        assert_eq!(ActivationPushdownRule.find(&g).len(), 1);
    }

    #[test]
    fn pushdown_then_channel_wise_cascade() {
        let g = darts_tail();
        let outcome = Rewriter::standard().rewrite(&g);
        // Pushdown (+2 relus) exposes concat→conv, then channel-wise fires.
        assert!(outcome.applied.iter().any(|a| a.rule == "activation-pushdown"));
        assert!(outcome.applied.iter().any(|a| a.rule == "channel-wise"));
        assert!(outcome.graph.validate().is_ok());
        // Rewriting lowers the achievable peak on this tail.
        let before = crate::dp::DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let after =
            crate::dp::DpScheduler::new().schedule(&outcome.graph).unwrap().schedule.peak_bytes;
        assert!(after < before, "after {after} >= before {before}");
    }

    #[test]
    fn sigmoid_is_also_pushed() {
        let mut b = GraphBuilder::new("sig");
        let x = b.image_input("x", 4, 4, 2, DType::F32);
        let l = b.conv1x1(x, 2).unwrap();
        let r = b.conv1x1(x, 2).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let s = b.sigmoid(cat).unwrap();
        let out = b.conv1x1(s, 4).unwrap();
        b.mark_output(out);
        let g = b.finish();
        assert_eq!(ActivationPushdownRule.find(&g).len(), 1);
    }

    #[test]
    fn batch_norm_is_not_pushed() {
        // BN parameters are indexed by absolute channel, so BN does not
        // commute with concat; the rule must not match it.
        let mut b = GraphBuilder::new("bn");
        let x = b.image_input("x", 4, 4, 2, DType::F32);
        let l = b.conv1x1(x, 2).unwrap();
        let r = b.conv1x1(x, 2).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let n = b.batch_norm(cat).unwrap();
        let out = b.conv1x1(n, 4).unwrap();
        b.mark_output(out);
        let g = b.finish();
        assert!(ActivationPushdownRule.find(&g).is_empty());
    }

    #[test]
    fn concat_with_multiple_consumers_not_pushed() {
        let mut b = GraphBuilder::new("multi");
        let x = b.image_input("x", 4, 4, 2, DType::F32);
        let l = b.conv1x1(x, 2).unwrap();
        let r = b.conv1x1(x, 2).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let a = b.relu(cat).unwrap();
        let s = b.sigmoid(cat).unwrap();
        let a1 = b.conv1x1(a, 2).unwrap();
        let s1 = b.conv1x1(s, 2).unwrap();
        let out = b.add(&[a1, s1]).unwrap();
        b.mark_output(out);
        let g = b.finish();
        assert!(ActivationPushdownRule.find(&g).is_empty());
    }
}
