//! The node-by-node graph rebuild: the rewrite rules' *reference* path.
//!
//! Node ids are topological by construction (predecessors are always added
//! first), so a graph can be rebuilt by walking ids in order, copying
//! untouched nodes and splicing replacements at the consumer's position.
//! This was how every rule applied its delta before the O(site) in-place
//! splice ([`serenity_ir::edit::GraphEdit`]) took over the hot path; it is
//! kept as an independent implementation of the same numbering contract so
//! property tests ([`reference_apply`]) can check that a spliced graph is
//! structurally identical to a full rebuild — the soundness condition for
//! incremental fingerprinting and site rescans.

use serenity_ir::fxhash::FxHashMap;
use serenity_ir::{ChannelRange, Graph, GraphError, NodeId, Op};

use super::RewriteSite;

/// Incrementally rebuilds a graph with an old→new id mapping.
pub(crate) struct Rebuilder<'g> {
    src: &'g Graph,
    out: Graph,
    map: FxHashMap<NodeId, NodeId>,
    added: Vec<NodeId>,
}

impl<'g> Rebuilder<'g> {
    pub(crate) fn new(src: &'g Graph) -> Self {
        Rebuilder {
            src,
            out: Graph::new(src.name().to_owned()),
            map: FxHashMap::default(),
            added: Vec::new(),
        }
    }

    /// The graph being built (rules go through [`Rebuilder::add_new`], which
    /// also records the delta; direct access is for tests).
    #[cfg(test)]
    pub(crate) fn out_mut(&mut self) -> &mut Graph {
        &mut self.out
    }

    /// Adds a genuinely new node (no source counterpart) and records it in
    /// the rebuild's [`Rebuilder::added`] delta.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures of the new node.
    pub(crate) fn add_new(
        &mut self,
        name: String,
        op: Op,
        preds: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        let id = self.out.add_named(name, op, preds)?;
        self.added.push(id);
        Ok(id)
    }

    /// Post-rewrite ids of the nodes created via [`Rebuilder::add_new`], in
    /// creation order.
    pub(crate) fn added(&self) -> &[NodeId] {
        &self.added
    }

    /// New id of an already-copied (or spliced) source node.
    ///
    /// # Panics
    ///
    /// Panics if `old` has not been mapped yet — rules only look up
    /// predecessors, which precede their consumers in id order.
    pub(crate) fn mapped(&self, old: NodeId) -> NodeId {
        *self.map.get(&old).expect("predecessor must already be mapped")
    }

    /// Registers a replacement: consumers of `old` will use `new`.
    pub(crate) fn splice(&mut self, old: NodeId, new: NodeId) {
        self.map.insert(old, new);
    }

    /// Copies source node `u` verbatim (with mapped predecessors).
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures (impossible for faithful copies).
    pub(crate) fn copy(&mut self, u: NodeId) -> Result<NodeId, GraphError> {
        let node = self.src.node(u);
        let preds: Vec<NodeId> = self.src.preds(u).iter().map(|&p| self.mapped(p)).collect();
        let id = match &node.op {
            Op::Input => self.out.add_input(node.name.clone(), node.shape.clone()),
            Op::Opaque { .. } => {
                self.out.add_opaque(node.name.clone(), node.shape.bytes(), &preds)?
            }
            op => self.out.add_named(node.name.clone(), op.clone(), &preds)?,
        };
        self.map.insert(u, id);
        Ok(id)
    }

    /// Carries explicit output markings over and returns the rebuilt graph.
    pub(crate) fn finish(mut self) -> Graph {
        for &o in self.src.explicit_outputs() {
            let mapped = self.mapped(o);
            self.out.mark_output(mapped);
        }
        self.out
    }
}

/// Applies `site` via a full node-by-node rebuild — the reference semantics
/// the rules' in-place splice path must reproduce structurally (see the
/// module docs). Dispatches on the site's rule name and returns the rebuilt
/// graph plus the post-rewrite ids of the created nodes.
///
/// # Errors
///
/// Returns a graph error if `site` does not match its rule on `graph`, or
/// the rule name is unknown.
pub fn reference_apply(
    graph: &Graph,
    site: &RewriteSite,
) -> Result<(Graph, Vec<NodeId>), GraphError> {
    let branches: Vec<NodeId> = graph.preds(site.concat).to_vec();
    let consumer_name = graph.node(site.consumer).name.clone();
    let consumer_op = graph.node(site.consumer).op.clone();

    let mut rb = Rebuilder::new(graph);
    for u in graph.node_ids() {
        if u == site.concat {
            continue; // the concat disappears
        }
        if u != site.consumer {
            rb.copy(u)?;
            continue;
        }
        // Splice the rule's replacement nodes at the consumer's position.
        let replacement = match (site.rule, &consumer_op) {
            ("channel-wise", Op::Conv2d(conv)) => {
                let mut partials = Vec::with_capacity(branches.len());
                let mut offset = 0u32;
                for (i, &x) in branches.iter().enumerate() {
                    let channels = graph.node(x).shape.c() as u32;
                    let slice = ChannelRange::new(offset, offset + channels);
                    offset += channels;
                    let mut partial = conv.clone();
                    partial.weight = partial.weight.with_in_slice(slice);
                    let mapped = rb.mapped(x);
                    let id = rb.add_new(
                        format!("{consumer_name}_part{i}"),
                        Op::Conv2d(partial),
                        &[mapped],
                    )?;
                    partials.push(id);
                }
                rb.add_new(format!("{consumer_name}_sum"), Op::AccumAdd, &partials)?
            }
            ("kernel-wise", Op::DepthwiseConv2d(dw)) => {
                let mut partials = Vec::with_capacity(branches.len());
                let mut offset = 0u32;
                for (i, &x) in branches.iter().enumerate() {
                    let channels = graph.node(x).shape.c() as u32;
                    let slice = ChannelRange::new(offset, offset + channels);
                    offset += channels;
                    let mut partial = dw.clone();
                    partial.weight = partial.weight.with_kernel_slice(slice);
                    let mapped = rb.mapped(x);
                    let id = rb.add_new(
                        format!("{consumer_name}_part{i}"),
                        Op::DepthwiseConv2d(partial),
                        &[mapped],
                    )?;
                    partials.push(id);
                }
                rb.add_new(format!("{consumer_name}_cat"), Op::SlabConcat { axis: 3 }, &partials)?
            }
            ("activation-pushdown", act @ (Op::Relu | Op::Sigmoid)) => {
                let Op::Concat { axis } = graph.node(site.concat).op else {
                    return Err(GraphError::InvalidOrder {
                        detail: format!("site anchor {} is not a concat", site.concat),
                    });
                };
                let mut pushed = Vec::with_capacity(branches.len());
                for (i, &x) in branches.iter().enumerate() {
                    let mapped = rb.mapped(x);
                    let id =
                        rb.add_new(format!("{consumer_name}_push{i}"), act.clone(), &[mapped])?;
                    pushed.push(id);
                }
                rb.add_new(format!("{consumer_name}_cat"), Op::Concat { axis }, &pushed)?
            }
            (rule, op) => {
                return Err(GraphError::InvalidOrder {
                    detail: format!("rule {rule} does not apply to consumer op {op:?}"),
                });
            }
        };
        rb.splice(site.consumer, replacement);
    }
    let added = rb.added().to_vec();
    Ok((rb.finish(), added))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_ir::{DType, TensorShape};

    #[test]
    fn verbatim_rebuild_is_identical() {
        let mut g = Graph::new("g");
        let a = g.add_input("a", TensorShape::nhwc(1, 4, 4, 2, DType::F32));
        let b = g.add(Op::Relu, &[a]).unwrap();
        let c = g.add(Op::Sigmoid, &[a]).unwrap();
        let d = g.add(Op::Add, &[b, c]).unwrap();
        g.mark_output(d);

        let mut rb = Rebuilder::new(&g);
        for u in g.node_ids() {
            rb.copy(u).unwrap();
        }
        let out = rb.finish();
        assert_eq!(out, g);
    }

    #[test]
    fn splice_redirects_consumers() {
        let mut g = Graph::new("g");
        let a = g.add_opaque("a", 10, &[]).unwrap();
        let b = g.add_opaque("b", 20, &[a]).unwrap();
        let c = g.add_opaque("c", 30, &[b]).unwrap();
        g.mark_output(c);

        // Replace b with a differently sized node.
        let mut rb = Rebuilder::new(&g);
        rb.copy(a).unwrap();
        let replacement = {
            let mapped_a = rb.mapped(a);
            rb.out_mut().add_opaque("b_new", 99, &[mapped_a]).unwrap()
        };
        rb.splice(b, replacement);
        rb.copy(c).unwrap();
        let out = rb.finish();
        assert_eq!(out.len(), 3);
        let new_c = out.node_ids().find(|&id| out.node(id).name == "c").unwrap();
        let pred = out.preds(new_c)[0];
        assert_eq!(out.node(pred).name, "b_new");
        assert_eq!(out.out_bytes(pred), 99);
    }
}
