//! Channel-wise partitioning of `concat + conv` (§3.3, Equations 3–6).

use serenity_ir::edit::GraphEdit;
use serenity_ir::{ChannelRange, Graph, GraphError, NodeId, Op};

use super::{concat_feeding, RewriteDelta, RewriteRule, RewriteSite};

/// Rewrites `y = conv(concat(x₁…xₖ))` into
/// `y = accum_add(partial_conv₁(x₁), …, partial_convₖ(xₖ))`, where
/// `partial_convᵢ` convolves with the input-channel slice `w⋆ᵢ` of the
/// original kernel and the partials accumulate in place into the
/// pre-allocated output ([`Op::AccumAdd`]). By distributivity of the channel
/// sum over convolution the result is arithmetically identical, but each
/// branch tensor is freed as soon as its partial convolution runs, instead of
/// surviving until the full concatenated tensor is consumed. Memory cost
/// drops from `Σᵢ xᵢ + y` to `max(xᵢ + y)` (Figure 9, top).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelWiseRule;

impl RewriteRule for ChannelWiseRule {
    fn name(&self) -> &'static str {
        "channel-wise"
    }

    fn find(&self, graph: &Graph) -> Vec<RewriteSite> {
        graph.node_ids().filter_map(|v| self.match_at(graph, v)).collect()
    }

    fn match_at(&self, graph: &Graph, consumer: NodeId) -> Option<RewriteSite> {
        let Op::Conv2d(conv) = &graph.node(consumer).op else {
            return None;
        };
        // Partial convolutions (already sliced) are not re-partitioned.
        if conv.weight.is_sliced() {
            return None;
        }
        let (concat, branches) = concat_feeding(graph, consumer)?;
        Some(RewriteSite { rule: self.name(), concat, consumer, branches })
    }

    fn apply_delta(&self, graph: &Graph, site: &RewriteSite) -> Result<RewriteDelta, GraphError> {
        let Op::Conv2d(conv) = &graph.node(site.consumer).op else {
            return Err(GraphError::InvalidOrder {
                detail: format!("site consumer {} is not a conv", site.consumer),
            });
        };
        let branches: &[NodeId] = graph.preds(site.concat);
        let consumer_name = &graph.node(site.consumer).name;

        // Splice in place: one partial conv per branch, then an n-ary add at
        // the consumer's position — O(branches), not O(V+E).
        let mut edit = GraphEdit::new(graph, site.consumer);
        let mut partials = Vec::with_capacity(branches.len());
        let mut offset = 0u32;
        for (i, &x) in branches.iter().enumerate() {
            let channels = graph.node(x).shape.c() as u32;
            let slice = ChannelRange::new(offset, offset + channels);
            offset += channels;
            let mut partial = conv.clone();
            partial.weight = partial.weight.with_in_slice(slice);
            let id =
                edit.add_node(format!("{consumer_name}_part{i}"), Op::Conv2d(partial), &[x])?;
            partials.push(id);
        }
        let add = edit.add_node(format!("{consumer_name}_sum"), Op::AccumAdd, &partials)?;
        edit.redirect(site.consumer, add);
        edit.remove(site.concat);
        edit.remove(site.consumer);
        let (out, splice) = edit.finish()?;
        Ok(RewriteDelta {
            graph: out,
            removed: vec![site.concat, site.consumer],
            added: splice.added.clone(),
            splice,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::Rewriter;
    use serenity_ir::{mem, topo, DType, GraphBuilder, Padding};

    fn concat_conv_cell(branch_channels: &[usize]) -> Graph {
        let mut b = GraphBuilder::new("cc");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let branches: Vec<_> = branch_channels.iter().map(|&c| b.conv1x1(x, c).unwrap()).collect();
        let cat = b.concat(&branches).unwrap();
        let y = b.conv(cat, 16, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    #[test]
    fn produces_partial_convs_and_add() {
        let g = concat_conv_cell(&[2, 3, 5]);
        let site = ChannelWiseRule.find(&g).remove(0);
        assert_eq!(site.branches, 3);
        let out = ChannelWiseRule.apply(&g, &site).unwrap();
        assert!(out.validate().is_ok());
        // concat+conv (2) → 3 partials + add (4): net +2.
        assert_eq!(out.len(), g.len() + 2);

        let partials: Vec<_> = out
            .nodes()
            .filter(|n| matches!(&n.op, Op::Conv2d(c) if c.weight.is_sliced()))
            .collect();
        assert_eq!(partials.len(), 3);
        // Slices tile the concatenated channel axis [0,2), [2,5), [5,10).
        let mut slices: Vec<(u32, u32)> = partials
            .iter()
            .map(|n| {
                let Op::Conv2d(c) = &n.op else { unreachable!() };
                let s = c.weight.in_slice.unwrap();
                (s.start, s.end)
            })
            .collect();
        slices.sort_unstable();
        assert_eq!(slices, vec![(0, 2), (2, 5), (5, 10)]);
        // All partials share the original weight id.
        let ids: std::collections::HashSet<_> =
            partials.iter().map(|n| n.op.weight().unwrap().id).collect();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn peak_memory_cost_drops_as_figure9_predicts() {
        // With many equal branches: before = Σxᵢ + y live at the conv;
        // after = one branch + y (plus pipeline slack).
        let g = concat_conv_cell(&[8, 8, 8, 8]);
        let rewritten = Rewriter::channel_only().rewrite(&g).graph;
        let before = crate::dp::DpScheduler::new().schedule(&g).unwrap().schedule.peak_bytes;
        let after = crate::dp::DpScheduler::new().schedule(&rewritten).unwrap().schedule.peak_bytes;
        assert!(after < before, "after {after} >= before {before}");
    }

    #[test]
    fn rewritten_graph_schedules_validly() {
        let g = concat_conv_cell(&[2, 2]);
        let rewritten = Rewriter::channel_only().rewrite(&g).graph;
        let order = topo::kahn(&rewritten);
        assert!(mem::peak_bytes(&rewritten, &order).is_ok());
    }

    #[test]
    fn weight_count_is_preserved() {
        // Slicing shares the original kernel: total parameters must not grow.
        let g = concat_conv_cell(&[2, 3]);
        let rewritten = Rewriter::channel_only().rewrite(&g).graph;
        assert_eq!(g.total_weights(), rewritten.total_weights());
    }

    #[test]
    fn macs_are_preserved() {
        // Partial convolutions perform exactly the same multiplies.
        let g = concat_conv_cell(&[2, 3, 4]);
        let rewritten = Rewriter::channel_only().rewrite(&g).graph;
        assert_eq!(g.total_macs(), rewritten.total_macs());
    }
}
