//! Single-flight request coalescing: concurrent identical requests elect
//! one leader to do the work; everyone else waits and shares the result.
//!
//! The [`CompileCache`](serenity_core::CompileCache) absorbs *sequential*
//! repetition, but a burst of identical requests all miss before the first
//! compile finishes and would each launch the same search. [`SingleFlight`]
//! closes that window: flights are keyed by the same identity as the cache
//! (backend configuration fingerprint × structural graph fingerprint ×
//! pinned prefix), so two requests coalesce exactly when the cache would
//! have considered them the same entry — and because every backend is
//! deterministic, the shared result is bit-identical to what each waiter
//! would have computed itself.
//!
//! # Cancellation and handoff
//!
//! The subtle case is a cancelled leader: its client hung up (or its
//! deadline expired), but the waiters are still live. Failing them all
//! would turn one disconnect into a burst of errors for healthy clients.
//! Instead the leader *abandons* the flight: the key is vacated, waiters
//! wake, and the first to re-enter becomes the new leader and compiles
//! under **its own** deadline and cancel token — a handoff, not a shared
//! failure. Deterministic compile errors (an unschedulable graph), by
//! contrast, *are* shared: every waiter would deterministically hit the
//! same error, so re-running the search N more times helps no one.
//!
//! Leaders are panic-safe: a guard abandons the flight on unwind, so a
//! crashed compile can never strand its waiters behind a key that nobody
//! is working on.
//!
//! # Bounded failure retries
//!
//! Between "deterministic error, share it" and "leader died, hand off"
//! sits the *transient* failure: a contained panic or an injected fault
//! that a fresh attempt may well not hit. [`Work::Fail`] publishes such a
//! failure with retry semantics: the failing leader's own caller gets the
//! failure, but — while the flight's attempt count is within the
//! [`SingleFlight::with_failure_retries`] budget — the key is vacated in a
//! retry state and exactly one waiter re-runs the work as the new leader
//! instead of inheriting the error. Once the budget is exhausted the
//! failure is published like [`Work::Done`], so a deterministic crasher
//! degenerates to at most `1 + retries` executions, never a retry storm.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use serde::Serialize;

/// How often a waiter wakes to poll its own cancellation while the leader
/// works. Coalesced waits are passive, so this only bounds how stale a
/// waiter's view of its own disconnect/deadline can get.
const WAIT_TICK: Duration = Duration::from_millis(10);

/// What a leader's work closure produced.
#[derive(Debug)]
pub enum Work<T> {
    /// The work finished (successfully or with a *deterministic* error);
    /// the value is published to every waiter.
    Done(T),
    /// The work was cut short by this request's own deadline or
    /// cancellation: vacate the flight so a waiter can take over.
    Abandon,
    /// The work failed *transiently* (a contained panic, an injected
    /// fault): the value is returned to this caller, but while the
    /// failure-retry budget lasts the key is vacated so one waiter retries
    /// the work instead of sharing the failure. With the budget exhausted
    /// (or no budget configured) this behaves exactly like [`Work::Done`].
    Fail(T),
}

/// How a [`SingleFlight::run`] call was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome<T> {
    /// This caller led the flight and computed the value itself.
    Led(T),
    /// A concurrent identical request computed the value; this caller
    /// waited and shares it.
    Shared(T),
    /// The caller's own cancellation check fired (client disconnect or
    /// deadline) before a value was available.
    Cancelled,
}

impl<T> FlightOutcome<T> {
    /// The value, if the flight produced one for this caller.
    pub fn into_value(self) -> Option<T> {
        match self {
            FlightOutcome::Led(v) | FlightOutcome::Shared(v) => Some(v),
            FlightOutcome::Cancelled => None,
        }
    }
}

enum State<T> {
    /// A leader is working.
    Running,
    /// The leader was cancelled; the key is vacated and a waiter should
    /// take over.
    Abandoned,
    /// The leader failed transiently with retry budget left; the key is
    /// vacated and a waiter should retry the work as the new leader.
    Retry,
    /// The leader published a value.
    Done(T),
}

struct Flight<T> {
    state: Mutex<State<T>>,
    wake: Condvar,
    /// How many transient failures preceded this flight (0 for a fresh
    /// key); compared against the failure-retry budget when the leader
    /// returns [`Work::Fail`].
    attempt: u32,
}

/// Point-in-time counters of a [`SingleFlight`] (see `GET /status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct SingleFlightStats {
    /// Flights led: units of work actually executed.
    pub leads: u64,
    /// Results shared by waiters: requests that did *not* execute the work.
    pub coalesced: u64,
    /// Waiters that became leaders after a cancelled leader abandoned.
    pub handoffs: u64,
    /// Waiters that became leaders to *retry* after a transient leader
    /// failure ([`Work::Fail`] within the failure-retry budget).
    pub failure_handoffs: u64,
    /// Requests currently blocked on another request's flight (a gauge,
    /// not a cumulative counter: it falls back to zero when flights
    /// resolve).
    pub waiting: u64,
}

/// The coalescing map (see the module docs).
///
/// `T` is the shared value; it must be `Clone` (use an `Arc` payload so a
/// clone is a pointer bump, not a copy of the compile result).
pub struct SingleFlight<T: Clone> {
    flights: Mutex<HashMap<u64, Arc<Flight<T>>>>,
    failure_retries: u32,
    leads: AtomicU64,
    coalesced: AtomicU64,
    handoffs: AtomicU64,
    failure_handoffs: AtomicU64,
    waiting: AtomicU64,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<T: Clone> std::fmt::Debug for SingleFlight<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SingleFlight")
            .field("leads", &stats.leads)
            .field("coalesced", &stats.coalesced)
            .field("handoffs", &stats.handoffs)
            .field("failure_handoffs", &stats.failure_handoffs)
            .field("waiting", &stats.waiting)
            .finish()
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty coalescing map with no failure-retry budget
    /// ([`Work::Fail`] behaves like [`Work::Done`]).
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
            failure_retries: 0,
            leads: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            failure_handoffs: AtomicU64::new(0),
            waiting: AtomicU64::new(0),
        }
    }

    /// Sets how many times a transient failure ([`Work::Fail`]) promotes a
    /// waiter to retry the work before the failure is shared with every
    /// remaining waiter. `0` (the default) disables retries.
    #[must_use]
    pub fn with_failure_retries(mut self, retries: u32) -> Self {
        self.failure_retries = retries;
        self
    }

    /// Runs `work` under single-flight semantics for `key`.
    ///
    /// If no flight for `key` is in progress, this caller becomes the
    /// leader: `work` runs (exactly once), and its [`Work::Done`] value is
    /// returned as [`FlightOutcome::Led`] and published to every waiter.
    /// If a flight is already in progress, the caller blocks — polling
    /// `cancelled` every few milliseconds — until the leader publishes
    /// ([`FlightOutcome::Shared`]), the caller's own `cancelled` fires
    /// ([`FlightOutcome::Cancelled`]), or the leader abandons, in which
    /// case one waiter takes over as the new leader (a *handoff*) and the
    /// rest keep waiting on the new flight.
    ///
    /// `work` returning [`Work::Abandon`] (the leader's own request died)
    /// vacates the key and yields [`FlightOutcome::Cancelled`] for the
    /// leader itself; a leader that panics abandons the same way before
    /// the panic propagates. [`Work::Fail`] yields the failure to the
    /// leader and — within the failure-retry budget — vacates the key so
    /// one waiter retries as the new leader instead of sharing the error.
    pub fn run(
        &self,
        key: u64,
        cancelled: impl Fn() -> bool,
        work: impl FnOnce() -> Work<T>,
    ) -> FlightOutcome<T> {
        let mut work = Some(work);
        let mut took_over = false;
        let mut retrying = false;
        let mut attempt = 0u32;
        loop {
            let (flight, is_leader) = {
                let mut map = self.flights.lock().unwrap_or_else(PoisonError::into_inner);
                match map.get(&key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(State::Running),
                            wake: Condvar::new(),
                            attempt,
                        });
                        map.insert(key, Arc::clone(&flight));
                        (flight, true)
                    }
                }
            };
            if is_leader {
                self.leads.fetch_add(1, Ordering::Relaxed);
                if retrying {
                    self.failure_handoffs.fetch_add(1, Ordering::Relaxed);
                } else if took_over {
                    self.handoffs.fetch_add(1, Ordering::Relaxed);
                }
                // The guard abandons the flight if `work` panics, so
                // waiters are never stranded behind a dead leader.
                let mut guard = LeadGuard { owner: self, key, flight: &flight, finished: false };
                let outcome = (work.take().expect("a caller leads at most once"))();
                guard.finished = true;
                drop(guard);
                return match outcome {
                    Work::Done(value) => {
                        self.finish(key, &flight, State::Done(value.clone()));
                        FlightOutcome::Led(value)
                    }
                    Work::Abandon => {
                        self.finish(key, &flight, State::Abandoned);
                        FlightOutcome::Cancelled
                    }
                    Work::Fail(value) => {
                        if flight.attempt < self.failure_retries {
                            // Budget left: vacate so a waiter retries
                            // instead of inheriting this failure.
                            self.finish(key, &flight, State::Retry);
                        } else {
                            self.finish(key, &flight, State::Done(value.clone()));
                        }
                        FlightOutcome::Led(value)
                    }
                };
            }
            // Waiter: block on the flight until it resolves, we are
            // cancelled, or the leader abandons (then retry the election).
            // The `waiting` gauge covers exactly this blocked window (the
            // guard decrements on every exit, including panics and the
            // re-election path where this thread stops being a waiter).
            self.waiting.fetch_add(1, Ordering::SeqCst);
            let _waiting = WaitGuard(&self.waiting);
            let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*state {
                    State::Done(value) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return FlightOutcome::Shared(value.clone());
                    }
                    State::Abandoned => {
                        took_over = true;
                        break;
                    }
                    State::Retry => {
                        retrying = true;
                        attempt = flight.attempt + 1;
                        break;
                    }
                    State::Running => {
                        if cancelled() {
                            return FlightOutcome::Cancelled;
                        }
                        state = flight
                            .wake
                            .wait_timeout(state, WAIT_TICK)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
            }
            // Leader abandoned or failed with retry budget left: loop back
            // and re-elect.
        }
    }

    /// Vacates `key` (only if it still maps to `flight` — a successor
    /// flight under the same key must not be torn down) and publishes
    /// `state` to the flight's waiters.
    fn finish(&self, key: u64, flight: &Arc<Flight<T>>, state: State<T>) {
        {
            let mut map = self.flights.lock().unwrap_or_else(PoisonError::into_inner);
            if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
                map.remove(&key);
            }
        }
        *flight.state.lock().unwrap_or_else(PoisonError::into_inner) = state;
        flight.wake.notify_all();
    }

    /// Number of flights currently in progress.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> SingleFlightStats {
        SingleFlightStats {
            leads: self.leads.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            handoffs: self.handoffs.load(Ordering::Relaxed),
            failure_handoffs: self.failure_handoffs.load(Ordering::Relaxed),
            waiting: self.waiting.load(Ordering::SeqCst),
        }
    }
}

/// Decrements the waiting gauge when a waiter stops waiting, however it
/// stops (shared value, cancellation, or re-election into a lead).
struct WaitGuard<'a>(&'a AtomicU64);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Abandons the flight if the leader's work panics.
struct LeadGuard<'a, T: Clone> {
    owner: &'a SingleFlight<T>,
    key: u64,
    flight: &'a Arc<Flight<T>>,
    finished: bool,
}

impl<T: Clone> Drop for LeadGuard<'_, T> {
    fn drop(&mut self) {
        if !self.finished {
            self.owner.finish(self.key, self.flight, State::Abandoned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn solo_caller_leads() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let out = sf.run(1, || false, || Work::Done(7));
        assert_eq!(out, FlightOutcome::Led(7));
        assert_eq!(
            sf.stats(),
            SingleFlightStats {
                leads: 1,
                coalesced: 0,
                handoffs: 0,
                failure_handoffs: 0,
                waiting: 0
            }
        );
        assert_eq!(sf.in_flight(), 0, "completed flights are vacated");
    }

    #[test]
    fn concurrent_identical_requests_run_once() {
        const N: usize = 8;
        let sf: SingleFlight<u32> = SingleFlight::new();
        let executions = AtomicUsize::new(0);
        let gate = Barrier::new(N);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    scope.spawn(|| {
                        gate.wait();
                        sf.run(
                            42,
                            || false,
                            || {
                                executions.fetch_add(1, Ordering::SeqCst);
                                // Hold the flight open long enough for every
                                // waiter to arrive.
                                std::thread::sleep(Duration::from_millis(100));
                                Work::Done(99)
                            },
                        )
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap().into_value(), Some(99), "all callers get the value");
            }
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one compile for the burst");
        let stats = sf.stats();
        assert_eq!(stats.leads, 1);
        assert_eq!(stats.coalesced as usize, N - 1);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: SingleFlight<u64> = SingleFlight::new();
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let sf = &sf;
                scope.spawn(move || {
                    let out = sf.run(k, || false, || Work::Done(k * 10));
                    assert_eq!(out, FlightOutcome::Led(k * 10));
                });
            }
        });
        assert_eq!(sf.stats().leads, 4);
        assert_eq!(sf.stats().coalesced, 0);
    }

    #[test]
    fn cancelled_leader_hands_off_to_a_waiter() {
        let sf: SingleFlight<&'static str> = SingleFlight::new();
        let gate = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                sf.run(
                    7,
                    || false,
                    || {
                        gate.wait(); // a waiter is now queued behind us
                        std::thread::sleep(Duration::from_millis(50));
                        Work::Abandon // our client hung up
                    },
                )
            });
            let waiter = scope.spawn(|| {
                gate.wait();
                sf.run(7, || false, || Work::Done("from the successor"))
            });
            assert_eq!(leader.join().unwrap(), FlightOutcome::Cancelled);
            // The waiter is promoted and computes the value itself rather
            // than failing with the dead leader.
            assert_eq!(waiter.join().unwrap(), FlightOutcome::Led("from the successor"));
        });
        let stats = sf.stats();
        assert_eq!(stats.handoffs, 1, "the waiter took over");
        assert_eq!(stats.leads, 2);
    }

    #[test]
    fn waiter_cancellation_is_its_own() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        let gate = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                sf.run(
                    7,
                    || false,
                    || {
                        gate.wait();
                        std::thread::sleep(Duration::from_millis(120));
                        Work::Done(5)
                    },
                )
            });
            let impatient = scope.spawn(|| {
                gate.wait();
                // This waiter's own client disconnects immediately.
                sf.run(7, || true, || Work::Done(5))
            });
            assert_eq!(impatient.join().unwrap(), FlightOutcome::Cancelled);
            assert_eq!(leader.join().unwrap(), FlightOutcome::Led(5), "leader is unaffected");
        });
    }

    #[test]
    fn failing_leader_hands_off_to_a_retrying_waiter() {
        let sf: SingleFlight<&'static str> = SingleFlight::new().with_failure_retries(1);
        let gate = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                sf.run(
                    9,
                    || false,
                    || {
                        gate.wait(); // a waiter is now queued behind us
                        std::thread::sleep(Duration::from_millis(50));
                        Work::Fail("transient failure")
                    },
                )
            });
            let waiter = scope.spawn(|| {
                gate.wait();
                sf.run(9, || false, || Work::Done("retried fine"))
            });
            // The failing leader's own caller still sees the failure …
            assert_eq!(leader.join().unwrap(), FlightOutcome::Led("transient failure"));
            // … but the waiter retried the work instead of inheriting it.
            assert_eq!(waiter.join().unwrap(), FlightOutcome::Led("retried fine"));
        });
        let stats = sf.stats();
        assert_eq!(stats.failure_handoffs, 1, "the waiter retried as leader");
        assert_eq!(stats.handoffs, 0, "no cancellation handoff happened");
        assert_eq!(stats.leads, 2);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn without_a_retry_budget_failures_are_shared() {
        let sf: SingleFlight<&'static str> = SingleFlight::new();
        let gate = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                sf.run(
                    9,
                    || false,
                    || {
                        gate.wait();
                        std::thread::sleep(Duration::from_millis(50));
                        Work::Fail("shared failure")
                    },
                )
            });
            let waiter = scope.spawn(|| {
                gate.wait();
                sf.run(9, || false, || Work::Done("never runs"))
            });
            assert_eq!(leader.join().unwrap(), FlightOutcome::Led("shared failure"));
            assert_eq!(waiter.join().unwrap(), FlightOutcome::Shared("shared failure"));
        });
        assert_eq!(sf.stats().failure_handoffs, 0);
    }

    #[test]
    fn retry_chain_is_bounded_by_the_budget() {
        // Three callers, every execution fails, budget of one retry: the
        // work runs exactly twice and the third caller shares the second
        // failure instead of retrying forever.
        let sf: SingleFlight<u32> = SingleFlight::new().with_failure_retries(1);
        let executions = AtomicUsize::new(0);
        let gate = Barrier::new(3);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        gate.wait();
                        sf.run(
                            5,
                            || false,
                            || {
                                let n = executions.fetch_add(1, Ordering::SeqCst) as u32;
                                // Hold the flight open so the pack stays
                                // coalesced across the retry.
                                std::thread::sleep(Duration::from_millis(60));
                                Work::Fail(n)
                            },
                        )
                    })
                })
                .collect();
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let led = outcomes.iter().filter(|o| matches!(o, FlightOutcome::Led(_))).count();
            assert_eq!(led, 2, "one lead plus exactly one retry");
            assert!(
                outcomes.iter().any(|o| matches!(o, FlightOutcome::Shared(1))),
                "the last caller shares the exhausted-budget failure, got {outcomes:?}"
            );
        });
        assert_eq!(executions.load(Ordering::SeqCst), 2);
        assert_eq!(sf.stats().failure_handoffs, 1);
    }

    #[test]
    fn panicking_leader_does_not_strand_waiters() {
        let sf = Arc::new(SingleFlight::<u32>::new());
        let gate = Arc::new(Barrier::new(2));
        let leader = {
            let (sf, gate) = (Arc::clone(&sf), Arc::clone(&gate));
            std::thread::spawn(move || {
                sf.run(
                    3,
                    || false,
                    || -> Work<u32> {
                        gate.wait();
                        std::thread::sleep(Duration::from_millis(30));
                        panic!("compile blew up");
                    },
                )
            })
        };
        gate.wait();
        // The waiter must be promoted once the leader's unwind abandons.
        let out = sf.run(3, || false, || Work::Done(11));
        assert_eq!(out.into_value(), Some(11));
        assert!(leader.join().is_err(), "leader panicked");
        assert_eq!(sf.in_flight(), 0);
    }
}
