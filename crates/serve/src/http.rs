//! A minimal, hardened HTTP/1.1 reader/writer over `std::net`.
//!
//! This is *not* a general HTTP implementation — it parses exactly the
//! subset the compile service speaks (request line, a bounded set of
//! headers, an optional `Content-Length` body) and refuses everything
//! else with a structured error the server maps to a 4xx response. The
//! input is untrusted, so every dimension is limited before allocation:
//! header block size, header count, and body size; chunked bodies and
//! HTTP/2 upgrades are rejected outright.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers block, before any body.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of headers.
const MAX_HEADERS: usize = 64;

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before (or mid-way through) a
    /// request — the normal end of a keep-alive connection.
    Closed,
    /// The read timed out (socket read timeout elapsed).
    Timeout,
    /// The bytes were not a well-formed HTTP/1.1 request we accept.
    /// Mapped to `400 Bad Request`.
    Malformed(String),
    /// The declared body exceeds the configured limit. Mapped to
    /// `413 Payload Too Large`.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: u64,
        /// Configured maximum body size.
        limit: u64,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed by peer"),
            ReadError::Timeout => write!(f, "timed out waiting for request"),
            ReadError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            ReadError::BodyTooLarge { declared, limit } => {
                write!(f, "request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ReadError::Io(e) => write!(f, "i/o error reading request: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ReadError::Closed,
            _ => ReadError::Io(e),
        }
    }
}

/// A parsed request: just the pieces the service routes on.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`), empty if absent.
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lowercased) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Value of the query parameter `key`, if present
    /// (`deadline_ms=250&x=1` style; no percent-decoding — our keys and
    /// values are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Whether the connection should stay open after the response.
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one request from `stream`, enforcing the head limits above and
/// `max_body_bytes` on the body.
///
/// The stream's read timeout (if any) applies per `read` call; an elapsed
/// timeout surfaces as [`ReadError::Timeout`].
pub fn read_request(stream: &mut TcpStream, max_body_bytes: u64) -> Result<Request, ReadError> {
    let head = read_head(stream)?;
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| ReadError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Malformed(format!("bad request line: {}", clip(request_line)))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!("unsupported version: {}", clip(version))));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // trailing empty element after the final CRLF
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Malformed(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line: {}", clip(line))))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let request = Request { method: method.to_string(), path, query, headers, body: Vec::new() };

    if request.header("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ReadError::Malformed("chunked transfer encoding is not supported".into()));
    }

    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length: {}", clip(v))))?,
    };
    if declared > max_body_bytes {
        return Err(ReadError::BodyTooLarge { declared, limit: max_body_bytes });
    }

    let mut request = request;
    if declared > 0 {
        let mut body = vec![0u8; declared as usize];
        stream.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// Reads bytes until the `\r\n\r\n` head terminator, returning the head
/// (terminator excluded). Reads one byte at a time — crude, but the head
/// is at most 16 KiB and the body (the bulk of a compile request) is read
/// in one `read_exact`.
fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, ReadError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Malformed("connection closed mid-request".into()))
                }
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => {
                // A timeout before any byte arrived is an idle keep-alive
                // connection; mid-head it is a stalled client.
                return Err(ReadError::from(e));
            }
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
    }
}

/// Writes a complete response with the given status and JSON body.
///
/// Every `503` automatically carries a `Retry-After: 1` header: the
/// service only sheds load transiently (a full accept queue, an
/// overloaded health probe), so well-behaved clients should back off
/// briefly and retry rather than treat the error as terminal. Other
/// statuses advertise it only when the caller passes `retry_after` (the
/// service sets it on transient refusals like budget 413s with no
/// degradation ladder to absorb them).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: bool,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = if status == 503 || retry_after { "retry-after: 1\r\n" } else { "" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n{retry_after}\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reason phrase for the handful of statuses the service emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Clips untrusted text for inclusion in an error message.
fn clip(text: &str) -> String {
    const MAX: usize = 64;
    if text.len() <= MAX {
        text.to_string()
    } else {
        let mut end = MAX;
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &text[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Spins up a loopback socket pair: (client writes, server reads).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn send_and_read(raw: &[u8], max_body: u64) -> Result<Request, ReadError> {
        let (mut client, mut server) = pair();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        read_request(&mut server, max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /compile?deadline_ms=250 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = send_and_read(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.query_param("deadline_ms"), Some("250"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = send_and_read(raw, 0).unwrap();
        assert_eq!(req.method, "GET");
        assert!(!req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let raw = b"POST /compile HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match send_and_read(raw, 100) {
            Err(ReadError::BodyTooLarge { declared: 999999, limit: 100 }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for raw in [
            b"not http at all\r\n\r\n".as_slice(),
            b"GET\r\n\r\n".as_slice(),
            b"GET / HTTP/2\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".as_slice(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(),
            b"\xff\xfe HTTP/1.1\r\n\r\n".as_slice(),
        ] {
            match send_and_read(raw, 1024) {
                Err(ReadError::Malformed(_)) => {}
                other => panic!("expected Malformed for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn immediate_close_reads_as_closed() {
        let (client, mut server) = pair();
        drop(client);
        match read_request(&mut server, 1024) {
            Err(ReadError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_header_spam_is_cut_off() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..1000 {
            raw.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        match send_and_read(&raw, 1024) {
            Err(ReadError::Malformed(detail)) => {
                assert!(detail.contains("headers") || detail.contains("head"), "{detail}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn response_writer_emits_parseable_http() {
        let (mut client, mut server) = pair();
        write_response(&mut server, 200, "{\"ok\":true}", true, false).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn load_shed_responses_carry_retry_after() {
        let (mut client, mut server) = pair();
        write_response(&mut server, 503, "{}", false, false).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");

        let (mut client, mut server) = pair();
        write_response(&mut server, 200, "{}", false, false).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(!text.contains("retry-after"), "non-503 must not advertise a retry: {text}");

        // An explicit retry_after adds the header on any status.
        let (mut client, mut server) = pair();
        write_response(&mut server, 413, "{}", false, true).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
    }
}
