//! The protocol-agnostic compile service: routing, request → compile
//! translation, single-flight coalescing, and status reporting.
//!
//! [`CompileService`] owns everything above the socket: the shared
//! [`CompileCache`], the [`SingleFlight`] map, the latency histogram, and
//! a *prototype* [`SerenityBuilder`] with the backend and cache attached.
//! Each request clones the prototype and stamps its own deadline and
//! [`CancelToken`] onto the clone — per-request lifecycle without
//! rebuilding the pipeline configuration per request.
//!
//! # Response shape
//!
//! `POST /compile` responses are split in two on purpose:
//!
//! * `result` — a function of (backend configuration, graph structure)
//!   only. Deterministic backends make it **bit-identical** across cache
//!   hits, coalesced waits, and cold compiles; the benchmark harness and
//!   the CI smoke test assert exactly that.
//! * `meta` — per-request circumstance: whether this response was
//!   coalesced off another request's compile, cache hit/miss counts, and
//!   the observed compile time. Never part of the identity.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use serenity_core::backend::SchedulerBackend;
use serenity_core::capacity::{CapacityObjective, CapacityTarget};
use serenity_core::pipeline::{CompiledSchedule, ResilientCompile, Serenity, SerenityBuilder};
use serenity_core::{
    CacheStats, CancelToken, CompileCache, FaultPlan, PersistReport, ScheduleError,
};
use serenity_ir::json::{from_json_checked, ImportLimits};
use serenity_ir::Graph;

use crate::histogram::{LatencyHistogram, LatencySummary};
use crate::http::Request;
use crate::singleflight::{FlightOutcome, SingleFlight, SingleFlightStats, Work};

/// Every `kind` string a `{"error":{kind,detail}}` body can carry, across
/// both the service and the socket layer. Adding a response error without
/// adding its kind here fails the exhaustiveness test, so the set clients
/// can switch on is always complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The request body (or a query parameter) could not be parsed.
    Parse,
    /// An import limit or the transport body-size cap was exceeded.
    Limit,
    /// A graph node failed validation on import.
    Node,
    /// The imported graph's structure is invalid (cycle, dangling edge…).
    Structure,
    /// Method not allowed on a known path.
    Method,
    /// Unknown path.
    Route,
    /// The compile pipeline failed (any error without a dedicated kind).
    Compile,
    /// The compile deadline elapsed.
    Deadline,
    /// Cache persistence was unavailable or failed.
    Persist,
    /// `POST /shutdown` is not enabled on this service.
    Shutdown,
    /// A contained panic while handling the request.
    Panic,
    /// Load shed at the door: the accept queue is full.
    Overload,
    /// The bytes on the wire were not an acceptable HTTP request.
    Http,
    /// The search-memory budget was exhausted and no rung could answer.
    Budget,
    /// The compiled schedule failed independent verification.
    Verification,
}

impl ErrorKind {
    /// Every kind, for exhaustiveness checks.
    pub const ALL: [ErrorKind; 15] = [
        ErrorKind::Parse,
        ErrorKind::Limit,
        ErrorKind::Node,
        ErrorKind::Structure,
        ErrorKind::Method,
        ErrorKind::Route,
        ErrorKind::Compile,
        ErrorKind::Deadline,
        ErrorKind::Persist,
        ErrorKind::Shutdown,
        ErrorKind::Panic,
        ErrorKind::Overload,
        ErrorKind::Http,
        ErrorKind::Budget,
        ErrorKind::Verification,
    ];

    /// The wire string clients see under `error.kind`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Limit => "limit",
            ErrorKind::Node => "node",
            ErrorKind::Structure => "structure",
            ErrorKind::Method => "method",
            ErrorKind::Route => "route",
            ErrorKind::Compile => "compile",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Persist => "persist",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Panic => "panic",
            ErrorKind::Overload => "overload",
            ErrorKind::Http => "http",
            ErrorKind::Budget => "budget",
            ErrorKind::Verification => "verification",
        }
    }

    /// The kind whose wire string is `s`, if any (the inverse of
    /// [`ErrorKind::as_str`]; used to fold externally produced kind
    /// strings, like the IR importer's, into the taxonomy).
    pub fn parse(s: &str) -> Option<ErrorKind> {
        ErrorKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service-level configuration (everything except the socket).
#[derive(Clone, Default)]
pub struct ServiceConfig {
    /// Limits applied to every incoming graph (untrusted input).
    pub limits: ImportLimits,
    /// Deadline applied to compiles whose request carries no
    /// `?deadline_ms=` parameter. `None` means no default bound.
    pub default_deadline: Option<Duration>,
    /// Directory for cache persistence. When set, the service warm-loads
    /// the cache from it at construction and `POST /persist` saves back to
    /// it. `None` disables both.
    pub persist_dir: Option<PathBuf>,
    /// Whether `POST /shutdown` is honoured (used by the benchmark
    /// harness and tests; off by default so a stray request cannot stop a
    /// production service).
    pub allow_shutdown: bool,
    /// Test-only fault-injection plan, threaded through the pipeline, the
    /// cache's persistence paths, and the socket layer. `None` (the
    /// default) disables every injection point.
    pub fault: Option<Arc<FaultPlan>>,
    /// Graceful-degradation ladder: backends tried in order (rewrite off,
    /// halved remaining deadline) when the primary backend fails or
    /// panics. Empty (the default) keeps the exact single-backend
    /// behavior — including propagating panics to the worker layer.
    pub fallback: Vec<Arc<dyn SchedulerBackend>>,
    /// Server-wide search-memory budget in bytes, applied to every
    /// compile and acting as a hard cap on per-request `?search_budget=`
    /// values (a request can tighten the budget, never raise it past
    /// this). `None` leaves compiles unbudgeted unless a request asks.
    pub search_budget: Option<u64>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("limits", &self.limits)
            .field("default_deadline", &self.default_deadline)
            .field("persist_dir", &self.persist_dir)
            .field("allow_shutdown", &self.allow_shutdown)
            .field("fault", &self.fault)
            .field(
                "fallback",
                &self.fallback.iter().map(|b| b.name().to_string()).collect::<Vec<_>>(),
            )
            .field("search_budget", &self.search_budget)
            .finish()
    }
}

/// Liveness counters for the failure-containment machinery, reported
/// under `robustness` on `GET /status` and consulted by `GET /health`.
///
/// Owned by the service but incremented by both layers: the socket layer
/// records sheds, worker panics/respawns, and injected socket resets; the
/// service records degraded responses. `queue_depth`/`queue_capacity`
/// form the overload gauge behind `/health`.
#[derive(Debug, Default)]
pub struct RobustnessStats {
    /// Connections answered `503` at the door because the accept queue
    /// was full.
    pub shed: AtomicU64,
    /// Requests whose handling panicked (each one got a structured `500`
    /// and cost no worker thread).
    pub worker_panics: AtomicU64,
    /// Worker threads respawned after a contained panic (the pool never
    /// shrinks, so this tracks `worker_panics`).
    pub workers_respawned: AtomicU64,
    /// Compile responses served off a fallback backend (`degraded: true`).
    pub degraded: AtomicU64,
    /// Connections dropped by the injected socket-reset fault.
    pub socket_resets: AtomicU64,
    /// Compile rungs (primary or fallback) that tripped the search-memory
    /// budget — counted even when a later rung served a degraded answer.
    pub budget_exhausted: AtomicU64,
    /// Compiles whose schedule failed independent verification (each one
    /// answered with a structured `500`; the schedule was never served).
    pub verification_failures: AtomicU64,
    /// Connections currently queued for a worker (gauge).
    pub queue_depth: AtomicU64,
    /// The accept queue's capacity (set once by the socket layer; 0 until
    /// a server owns this service).
    pub queue_capacity: AtomicU64,
}

impl RobustnessStats {
    /// Whether the accept queue is at (or beyond) capacity — the signal
    /// `GET /health` reports as `overloaded` and answers `503` for.
    pub fn overloaded(&self) -> bool {
        let capacity = self.queue_capacity.load(Ordering::Relaxed);
        capacity > 0 && self.queue_depth.load(Ordering::Relaxed) >= capacity
    }
}

/// Cumulative scheduler race counters over every *cold* compile (cache
/// hits and coalesced waits never run a search, so they contribute
/// nothing). Surfaced under `scheduler` on `GET /status`.
#[derive(Debug, Default)]
struct SchedulerCounters {
    /// Cold compiles whose stats were folded in.
    compiles: AtomicU64,
    /// Search states discarded against the shared incumbent bound.
    bound_pruned: AtomicU64,
    /// Searches that exited early because the incumbent was unbeatable.
    bound_beaten_exits: AtomicU64,
    /// Portfolio members skipped after an exact member won the race.
    race_cutoffs: AtomicU64,
}

/// A response ready to be written: status code and JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
    /// Whether the server should begin shutting down after writing this
    /// response (only ever set by an authorised `POST /shutdown`).
    pub shutdown: bool,
    /// Whether the response should advertise `Retry-After` (the socket
    /// layer also adds it to every `503` on its own).
    pub retry_after: bool,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Response { status, body, shutdown: false, retry_after: false }
    }

    fn error(status: u16, kind: ErrorKind, detail: &str) -> Self {
        #[derive(Serialize)]
        struct Detail {
            kind: String,
            detail: String,
        }
        #[derive(Serialize)]
        struct Body {
            error: Detail,
        }
        let body = serde_json::to_string(&Body {
            error: Detail { kind: kind.as_str().to_string(), detail: detail.to_string() },
        })
        .expect("error body serializes");
        Response::json(status, body)
    }
}

/// The deterministic half of a compile response (see the module docs).
#[derive(Debug, Clone, Serialize)]
struct CompileResult {
    graph: String,
    nodes: usize,
    peak_bytes: u64,
    baseline_peak_bytes: u64,
    reduction_factor: f64,
    arena_bytes: Option<u64>,
    rewrites_applied: usize,
    order: Vec<usize>,
}

impl CompileResult {
    fn of(compiled: &CompiledSchedule) -> Self {
        CompileResult {
            graph: compiled.graph.name().to_string(),
            nodes: compiled.graph.len(),
            peak_bytes: compiled.peak_bytes,
            baseline_peak_bytes: compiled.baseline_peak_bytes,
            reduction_factor: compiled.reduction_factor(),
            arena_bytes: compiled.arena_bytes(),
            rewrites_applied: compiled.rewrites.len(),
            order: compiled.schedule.order.iter().map(|id| id.index()).collect(),
        }
    }
}

/// What one leader's compile produced, shared across coalesced waiters.
#[derive(Debug)]
struct CompiledPayload {
    /// Serialized [`CompileResult`] — already a string so every waiter
    /// ships byte-identical text without re-serializing.
    result_json: String,
    cache_hits: u64,
    cache_misses: u64,
    compile_micros: u64,
    /// Pre-serialized degradation provenance, present only when the
    /// compile was served off a fallback backend. `None` on the healthy
    /// path keeps healthy responses byte-identical to a service with no
    /// ladder configured.
    degradation_json: Option<String>,
    /// Pre-serialized [`serenity_core::VerifiedCertificate`] from the
    /// leader's independent verification pass. Spliced into `meta` only
    /// for requests that asked (`?verify=1`), so healthy responses stay
    /// byte-identical either way.
    verification_json: String,
    /// Pre-serialized capacity summary, present only when the request
    /// carried `?capacity=`. `None` keeps unconstrained responses
    /// byte-identical to a service that never heard of capacities.
    capacity_json: Option<String>,
}

/// A deterministic compile failure, shared across coalesced waiters (all
/// of them would hit the same error if they re-ran the search).
#[derive(Debug, Clone)]
struct SharedFailure {
    status: u16,
    kind: ErrorKind,
    detail: String,
}

type FlightResult = Result<Arc<CompiledPayload>, SharedFailure>;

/// The compile service (see the module docs).
#[derive(Debug)]
pub struct CompileService {
    /// Prototype pipeline: backend + cache attached, no per-request state.
    proto: SerenityBuilder,
    cache: Arc<CompileCache>,
    backend_key: u64,
    flights: SingleFlight<FlightResult>,
    config: ServiceConfig,
    latency: LatencyHistogram,
    requests: AtomicU64,
    started: Instant,
    /// Report of the warm-start load, when persistence is configured and
    /// the directory existed.
    warm_start: Option<PersistReport>,
    robustness: RobustnessStats,
    scheduler: SchedulerCounters,
}

impl CompileService {
    /// Builds a service around `backend` and a shared `cache`.
    ///
    /// If [`ServiceConfig::persist_dir`] points at an existing directory,
    /// the cache is warm-loaded from it before the first request; a
    /// missing or unreadable directory degrades to a cold start (the
    /// report, or its absence, shows up under `persist.warm_start` on
    /// `GET /status`).
    pub fn new(
        backend: Arc<dyn SchedulerBackend>,
        cache: Arc<CompileCache>,
        config: ServiceConfig,
    ) -> Self {
        let backend_key = backend.config_fingerprint();
        if let Some(plan) = &config.fault {
            cache.install_fault_plan(Arc::clone(plan));
        }
        let warm_start = config
            .persist_dir
            .as_deref()
            .filter(|dir| dir.is_dir())
            .and_then(|dir| cache.load_from_dir(dir).ok());
        let mut proto = Serenity::builder().backend(backend).compile_cache(Arc::clone(&cache));
        if let Some(plan) = &config.fault {
            proto = proto.fault_plan(Arc::clone(plan));
        }
        if !config.fallback.is_empty() {
            proto = proto.fallback_backends(config.fallback.clone());
        }
        CompileService {
            proto,
            cache,
            backend_key,
            // One retry-as-leader after a transient (panicked) compile
            // failure: healthy waiters get a fresh attempt instead of a
            // coalesced copy of someone else's crash.
            flights: SingleFlight::new().with_failure_retries(1),
            config,
            latency: LatencyHistogram::new(),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            warm_start,
            robustness: RobustnessStats::default(),
            scheduler: SchedulerCounters::default(),
        }
    }

    /// The failure-containment counters, shared with the socket layer.
    pub fn robustness(&self) -> &RobustnessStats {
        &self.robustness
    }

    /// The installed fault-injection plan, if any (consulted by the
    /// socket layer for the socket-reset point).
    pub fn fault(&self) -> Option<&Arc<FaultPlan>> {
        self.config.fault.as_ref()
    }

    /// The shared compile cache (for tests and the CLI's shutdown save).
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.cache
    }

    /// The configured persistence directory, if any.
    pub fn persist_dir(&self) -> Option<&std::path::Path> {
        self.config.persist_dir.as_deref()
    }

    /// Handles one parsed request.
    ///
    /// `cancel` is the request's cancellation token: the server's
    /// disconnect watchdog trips it when the client hangs up, and the
    /// compile pipeline polls it. Returns `None` when the client is
    /// already gone and no response should be written.
    pub fn handle(&self, request: &Request, cancel: &CancelToken) -> Option<Response> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/compile") => self.handle_compile(request, cancel),
            ("GET", "/status") => Some(self.handle_status()),
            ("GET", "/healthz") => Some(Response::json(200, "{\"ok\":true}".to_string())),
            ("GET", "/health") => Some(self.handle_health()),
            ("POST", "/persist") => Some(self.handle_persist()),
            ("POST", "/shutdown") => Some(self.handle_shutdown()),
            (_, "/compile" | "/status" | "/healthz" | "/health" | "/persist" | "/shutdown") => {
                Some(Response::error(405, ErrorKind::Method, "method not allowed for this path"))
            }
            _ => Some(Response::error(404, ErrorKind::Route, "unknown path")),
        }
    }

    fn handle_compile(&self, request: &Request, cancel: &CancelToken) -> Option<Response> {
        let arrived = Instant::now();
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return Some(Response::error(
                    400,
                    ErrorKind::Parse,
                    "request body is not valid UTF-8",
                ))
            }
        };
        let graph = match from_json_checked(text, &self.config.limits) {
            Ok(graph) => graph,
            Err(e) => {
                let kind = ErrorKind::parse(e.kind()).unwrap_or(ErrorKind::Parse);
                return Some(Response::error(400, kind, &e.to_string()));
            }
        };
        let deadline = match request.query_param("deadline_ms") {
            None => self.config.default_deadline,
            Some(raw) => match raw.parse::<u64>() {
                Ok(ms) => Some(Duration::from_millis(ms)),
                Err(_) => {
                    return Some(Response::error(
                        400,
                        ErrorKind::Parse,
                        &format!("bad deadline_ms value: {raw}"),
                    ))
                }
            },
        };
        let give_up_at = deadline.map(|d| arrived + d);
        let want_verify = request.query_param("verify").is_some_and(|v| v == "1" || v == "true");
        // Effective search budget: the server-wide cap, tightened (never
        // raised) by the request's `?search_budget=`.
        let requested_budget = match request.query_param("search_budget") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(bytes) => Some(bytes),
                Err(_) => {
                    return Some(Response::error(
                        400,
                        ErrorKind::Parse,
                        &format!("bad search_budget value: {raw}"),
                    ))
                }
            },
        };
        let budget = match (requested_budget, self.config.search_budget) {
            (Some(asked), Some(cap)) => Some(asked.min(cap)),
            (asked, cap) => asked.or(cap),
        };
        // `?capacity=N` constrains the compile to an on-chip capacity;
        // `&objective=traffic` additionally re-ranks candidate schedules by
        // (fits, off-chip traffic, peak).
        let capacity_bytes = match request.query_param("capacity") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(bytes) if bytes > 0 => Some(bytes),
                _ => {
                    return Some(Response::error(
                        400,
                        ErrorKind::Parse,
                        &format!("bad capacity value: {raw}"),
                    ))
                }
            },
        };
        let objective = match request.query_param("objective") {
            None => CapacityObjective::Fit,
            Some("fit") => CapacityObjective::Fit,
            Some("traffic") => CapacityObjective::MinTraffic,
            Some(other) => {
                return Some(Response::error(
                    400,
                    ErrorKind::Parse,
                    &format!("bad objective value: {other} (expected fit or traffic)"),
                ))
            }
        };
        if capacity_bytes.is_none() && request.query_param("objective").is_some() {
            return Some(Response::error(
                400,
                ErrorKind::Parse,
                "objective= steers the capacity constraint and needs capacity=",
            ));
        }
        let capacity =
            capacity_bytes.map(|bytes| CapacityTarget { capacity_bytes: bytes, objective });

        // Flight identity = cache identity: backend configuration ×
        // structural fingerprint. Deadlines are deliberately *not* part of
        // the key — coalescing ignores them, and each request enforces its
        // own bound while waiting. The search budget IS mixed in: a budget
        // changes whether the search is allowed to finish, so requests
        // under different budgets must not share a failure. Capacity
        // targets are also mixed in — even a non-steering `fit` target
        // changes the response meta, so it must never coalesce with an
        // unconstrained request (the steering salt alone would miss that).
        let capacity_key = capacity.map_or(0, |t| {
            t.capacity_bytes.rotate_left(23)
                ^ t.cache_salt()
                ^ (u64::from(t.steers_search()) << 1 | 1)
        });
        let key = flight_key(
            self.backend_key
                ^ budget.map_or(0, |b| b.wrapping_add(1).rotate_left(17))
                ^ capacity_key,
            serenity_ir::fingerprint::fingerprint(&graph),
        );

        let mut own_error: Option<ScheduleError> = None;
        let outcome = self.flights.run(
            key,
            || cancel.is_cancelled() || give_up_at.is_some_and(|t| Instant::now() >= t),
            || {
                let compile_started = Instant::now();
                let mut pipeline = self.proto.clone().cancel_token(cancel.clone());
                if let Some(remaining) =
                    give_up_at.map(|t| t.saturating_duration_since(compile_started))
                {
                    pipeline = pipeline.deadline(remaining);
                }
                if let Some(bytes) = budget {
                    pipeline = pipeline.memory_budget(bytes);
                }
                if let Some(target) = capacity {
                    pipeline = pipeline.capacity_target(target);
                }
                match pipeline.build().compile_resilient(&graph) {
                    Ok(resilient) => {
                        let ResilientCompile { compiled, degraded, fallback_backend, attempts } =
                            resilient;
                        // Budget trips absorbed by the ladder still count:
                        // the rung's error string is the stable marker
                        // (mirrors ScheduleError::MemoryBudgetExceeded's
                        // Display).
                        let budget_trips = attempts
                            .iter()
                            .filter(|a| a.error.contains("exceeded the budget"))
                            .count() as u64;
                        if budget_trips > 0 {
                            self.robustness
                                .budget_exhausted
                                .fetch_add(budget_trips, Ordering::Relaxed);
                        }
                        // Independent certification of every answer before
                        // it is shared or served: a schedule the verifier
                        // rejects becomes a structured 500, never a wrong
                        // answer.
                        let verification_json =
                            match serenity_core::verify::verify(&graph, &compiled) {
                                Ok(cert) => {
                                    serde_json::to_string(&cert).expect("certificate serializes")
                                }
                                Err(failure) => {
                                    self.robustness
                                        .verification_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                    return Work::Done(Err(SharedFailure {
                                        status: 500,
                                        kind: ErrorKind::Verification,
                                        detail: failure.to_string(),
                                    }));
                                }
                            };
                        let s = &self.scheduler;
                        s.compiles.fetch_add(1, Ordering::Relaxed);
                        s.bound_pruned.fetch_add(compiled.stats.bound_pruned, Ordering::Relaxed);
                        s.bound_beaten_exits
                            .fetch_add(compiled.stats.bound_beaten_exits, Ordering::Relaxed);
                        s.race_cutoffs.fetch_add(compiled.stats.race_cutoffs, Ordering::Relaxed);
                        let result_json = serde_json::to_string(&CompileResult::of(&compiled))
                            .expect("compile result serializes");
                        let degradation_json = degraded.then(|| {
                            self.robustness.degraded.fetch_add(1, Ordering::Relaxed);
                            degradation_provenance(fallback_backend.as_deref(), &attempts)
                        });
                        let capacity_json = compiled.capacity.map(|r| capacity_summary(&r));
                        Work::Done(Ok(Arc::new(CompiledPayload {
                            result_json,
                            cache_hits: compiled.stats.cache_hits,
                            cache_misses: compiled.stats.cache_misses,
                            compile_micros: u64::try_from(compile_started.elapsed().as_micros())
                                .unwrap_or(u64::MAX),
                            degradation_json,
                            verification_json,
                            capacity_json,
                        })))
                    }
                    // This request's own lifecycle ended: vacate the
                    // flight so a live waiter takes over (handoff) rather
                    // than inheriting our death.
                    Err(
                        e @ (ScheduleError::Cancelled | ScheduleError::DeadlineExceeded { .. }),
                    ) => {
                        own_error = Some(e);
                        Work::Abandon
                    }
                    // A contained panic is transient (it may be an
                    // injected fault or a data race, not a property of the
                    // graph): fail this caller but let one waiter retry.
                    Err(e @ ScheduleError::Panicked { .. }) => Work::Fail(Err(SharedFailure {
                        status: 500,
                        kind: ErrorKind::Compile,
                        detail: e.to_string(),
                    })),
                    // The budget killed every rung: a 413-style structured
                    // refusal (the request was too big for the allowance),
                    // deterministic for this (backend, graph, budget) key.
                    Err(e @ ScheduleError::MemoryBudgetExceeded { .. }) => {
                        self.robustness.budget_exhausted.fetch_add(1, Ordering::Relaxed);
                        Work::Done(Err(SharedFailure {
                            status: 413,
                            kind: ErrorKind::Budget,
                            detail: e.to_string(),
                        }))
                    }
                    // Any other failure is deterministic for this (backend,
                    // graph) pair: share it, don't re-run the search N times.
                    Err(e) => Work::Done(Err(SharedFailure {
                        status: 500,
                        kind: ErrorKind::Compile,
                        detail: e.to_string(),
                    })),
                }
            },
        );

        let coalesced = matches!(outcome, FlightOutcome::Shared(_));
        let response = match outcome {
            FlightOutcome::Led(flight) | FlightOutcome::Shared(flight) => match flight {
                Ok(payload) => {
                    Some(self.compile_response(&payload, coalesced, arrived.elapsed(), want_verify))
                }
                Err(failure) => {
                    let mut response =
                        Response::error(failure.status, failure.kind, &failure.detail);
                    // With no degradation ladder configured a budget
                    // refusal is transient from the client's view (retry
                    // later, or with a bigger allowance); with a ladder, a
                    // budget 413 means even the cheapest rung failed —
                    // retrying the same request is pointless.
                    response.retry_after =
                        failure.kind == ErrorKind::Budget && self.config.fallback.is_empty();
                    Some(response)
                }
            },
            FlightOutcome::Cancelled => {
                if cancel.is_cancelled()
                    && !matches!(own_error, Some(ScheduleError::DeadlineExceeded { .. }))
                {
                    // Client disconnect: nobody is listening.
                    None
                } else {
                    Some(Response::error(504, ErrorKind::Deadline, "compile deadline exceeded"))
                }
            }
        };
        if response.is_some() {
            self.latency.record(arrived.elapsed());
        }
        response
    }

    fn compile_response(
        &self,
        payload: &CompiledPayload,
        coalesced: bool,
        request_elapsed: Duration,
        want_verify: bool,
    ) -> Response {
        #[derive(Serialize)]
        struct Meta {
            coalesced: bool,
            cache_hits: u64,
            cache_misses: u64,
            compile_micros: u64,
            request_micros: u64,
        }
        let mut meta = serde_json::to_string(&Meta {
            coalesced,
            cache_hits: payload.cache_hits,
            cache_misses: payload.cache_misses,
            compile_micros: payload.compile_micros,
            request_micros: u64::try_from(request_elapsed.as_micros()).unwrap_or(u64::MAX),
        })
        .expect("meta serializes");
        // Degradation provenance is spliced in ONLY on degraded responses:
        // the healthy path's body must stay byte-identical to a service
        // with no ladder configured.
        if let Some(degradation) = &payload.degradation_json {
            meta.truncate(meta.len() - 1);
            meta.push_str(",\"degraded\":true,\"degradation\":");
            meta.push_str(degradation);
            meta.push('}');
        }
        // The capacity summary is spliced in exactly when the compile ran
        // under `?capacity=` (the flight key guarantees constrained and
        // unconstrained requests never share a payload).
        if let Some(capacity) = &payload.capacity_json {
            meta.truncate(meta.len() - 1);
            meta.push_str(",\"capacity\":");
            meta.push_str(capacity);
            meta.push('}');
        }
        // The certificate is spliced in ONLY when this request asked for
        // it — the leader always verified; requests that didn't ask keep
        // the exact pre-verification body.
        if want_verify {
            meta.truncate(meta.len() - 1);
            meta.push_str(",\"verification\":");
            meta.push_str(&payload.verification_json);
            meta.push('}');
        }
        // `result` is spliced in as pre-serialized text so coalesced and
        // leading responses are byte-identical in that field.
        let body = format!("{{\"result\":{},\"meta\":{}}}", payload.result_json, meta);
        Response::json(200, body)
    }

    fn handle_status(&self) -> Response {
        #[derive(Serialize)]
        struct PersistStatus {
            dir: Option<String>,
            warm_start: Option<PersistReport>,
        }
        #[derive(Serialize)]
        struct RobustnessSnapshot {
            shed: u64,
            worker_panics: u64,
            workers_respawned: u64,
            degraded_responses: u64,
            socket_resets: u64,
            budget_exhausted: u64,
            verification_failures: u64,
            failure_handoffs: u64,
            queue_depth: u64,
            queue_capacity: u64,
            faults_injected: u64,
            shards_quarantined: u64,
        }
        #[derive(Serialize)]
        struct SchedulerSnapshot {
            compiles: u64,
            bound_pruned: u64,
            bound_beaten_exits: u64,
            race_cutoffs: u64,
        }
        #[derive(Serialize)]
        struct Status {
            uptime_secs: u64,
            requests: u64,
            cache: CacheStats,
            cache_hit_rate: f64,
            singleflight: SingleFlightStats,
            compile_latency: LatencySummary,
            persist: PersistStatus,
            robustness: RobustnessSnapshot,
            scheduler: SchedulerSnapshot,
        }
        let cache = self.cache.stats();
        let flights = self.flights.stats();
        let r = &self.robustness;
        let body = serde_json::to_string(&Status {
            uptime_secs: self.started.elapsed().as_secs(),
            requests: self.requests.load(Ordering::Relaxed),
            cache,
            cache_hit_rate: cache.hit_rate(),
            singleflight: flights,
            compile_latency: self.latency.snapshot(),
            persist: PersistStatus {
                dir: self
                    .config
                    .persist_dir
                    .as_deref()
                    .and_then(|d| d.to_str())
                    .map(str::to_string),
                warm_start: self.warm_start,
            },
            robustness: RobustnessSnapshot {
                shed: r.shed.load(Ordering::Relaxed),
                worker_panics: r.worker_panics.load(Ordering::Relaxed),
                workers_respawned: r.workers_respawned.load(Ordering::Relaxed),
                degraded_responses: r.degraded.load(Ordering::Relaxed),
                socket_resets: r.socket_resets.load(Ordering::Relaxed),
                budget_exhausted: r.budget_exhausted.load(Ordering::Relaxed),
                verification_failures: r.verification_failures.load(Ordering::Relaxed),
                failure_handoffs: flights.failure_handoffs,
                queue_depth: r.queue_depth.load(Ordering::Relaxed),
                queue_capacity: r.queue_capacity.load(Ordering::Relaxed),
                faults_injected: self.config.fault.as_ref().map_or(0, |plan| plan.fired_total()),
                shards_quarantined: self
                    .warm_start
                    .map_or(0, |report| report.shards_quarantined as u64),
            },
            scheduler: SchedulerSnapshot {
                compiles: self.scheduler.compiles.load(Ordering::Relaxed),
                bound_pruned: self.scheduler.bound_pruned.load(Ordering::Relaxed),
                bound_beaten_exits: self.scheduler.bound_beaten_exits.load(Ordering::Relaxed),
                race_cutoffs: self.scheduler.race_cutoffs.load(Ordering::Relaxed),
            },
        })
        .expect("status serializes");
        Response::json(200, body)
    }

    /// Liveness/readiness/overload probe. Answering at all proves
    /// liveness; `ready` is true once construction (including any warm
    /// load) finished — which it has, by the time requests route here —
    /// and `overloaded` mirrors the accept-queue gauge. An overloaded
    /// service answers `503` (with `Retry-After`) so load balancers pull
    /// it from rotation until the backlog drains.
    fn handle_health(&self) -> Response {
        let overloaded = self.robustness.overloaded();
        let body = format!("{{\"live\":true,\"ready\":true,\"overloaded\":{overloaded}}}");
        Response::json(if overloaded { 503 } else { 200 }, body)
    }

    fn handle_persist(&self) -> Response {
        let Some(dir) = self.config.persist_dir.as_deref() else {
            return Response::error(
                400,
                ErrorKind::Persist,
                "no persistence directory is configured",
            );
        };
        match self.cache.save_to_dir(dir) {
            Ok(report) => Response::json(
                200,
                serde_json::to_string(&report).expect("persist report serializes"),
            ),
            Err(e) => {
                Response::error(500, ErrorKind::Persist, &format!("saving cache failed: {e}"))
            }
        }
    }

    fn handle_shutdown(&self) -> Response {
        if !self.config.allow_shutdown {
            return Response::error(
                400,
                ErrorKind::Shutdown,
                "shutdown is not enabled on this service",
            );
        }
        // Best-effort final save so a clean shutdown never loses the warm
        // cache (the benchmark's restart phase depends on it).
        if let Some(dir) = self.config.persist_dir.as_deref() {
            let _ = self.cache.save_to_dir(dir);
        }
        let mut response = Response::json(200, "{\"shutting_down\":true}".to_string());
        response.shutdown = true;
        response
    }

    /// Directly compiles `graph` the way a request for it would (no HTTP,
    /// no coalescing, no cache unless the shared cache hits). Used by
    /// tests and the benchmark for bit-identity baselines.
    pub fn compile_result_json(&self, graph: &Graph) -> Result<String, ScheduleError> {
        let compiled = self.proto.clone().build().compile(graph)?;
        Ok(serde_json::to_string(&CompileResult::of(&compiled)).expect("result serializes"))
    }
}

/// Serializes degradation provenance for a degraded response's meta:
/// which fallback backend served the result and what each earlier rung
/// failed with.
fn degradation_provenance(
    fallback_backend: Option<&str>,
    attempts: &[serenity_core::pipeline::DegradeStep],
) -> String {
    #[derive(Serialize)]
    struct Provenance {
        fallback_backend: Option<String>,
        attempts: Vec<serenity_core::pipeline::DegradeStep>,
    }
    serde_json::to_string(&Provenance {
        fallback_backend: fallback_backend.map(str::to_string),
        attempts: attempts.to_vec(),
    })
    .expect("degradation provenance serializes")
}

/// Serializes the `meta.capacity` summary from the pipeline's verified
/// [`CapacityReport`](serenity_core::capacity::CapacityReport): whether the
/// schedule fits, how far it spills, and the total off-chip traffic it
/// would pay (`null` when a single working set exceeds the capacity).
fn capacity_summary(report: &serenity_core::capacity::CapacityReport) -> String {
    #[derive(Serialize)]
    struct CapacitySummary {
        capacity_bytes: u64,
        objective: String,
        fits: bool,
        feasible: bool,
        spill_bytes: u64,
        traffic: Option<u64>,
    }
    serde_json::to_string(&CapacitySummary {
        capacity_bytes: report.capacity_bytes,
        objective: report.objective.to_string(),
        fits: report.fits,
        feasible: report.feasible,
        spill_bytes: report.spill_bytes,
        traffic: report.traffic.map(|t| t.total_traffic()),
    })
    .expect("capacity summary serializes")
}

/// Mixes the backend identity with the graph fingerprint (splitmix64
/// finalizer, mirroring the cache's own key mixing).
fn flight_key(backend_key: u64, graph_key: u64) -> u64 {
    let mut z = backend_key ^ graph_key.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenity_core::backend::AdaptiveBackend;
    use serenity_ir::json::to_json;
    use serenity_ir::{DType, GraphBuilder, Padding};

    fn demo_graph(channels: usize) -> Graph {
        let mut b = GraphBuilder::new("svc-demo");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let l = b.conv1x1(x, channels).unwrap();
        let r = b.conv1x1(x, channels).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    fn service() -> CompileService {
        CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig { allow_shutdown: true, ..ServiceConfig::default() },
        )
    }

    fn post_compile(body: &str, query: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: "/compile".to_string(),
            query: query.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn compile_round_trip_matches_direct_compile() {
        let svc = service();
        let graph = demo_graph(4);
        let request = post_compile(&to_json(&graph), "");
        let response = svc.handle(&request, &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let body: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        let direct: serde_json::Value =
            serde_json::from_str(&svc.compile_result_json(&graph).unwrap()).unwrap();
        assert_eq!(body["result"], direct, "served result must be bit-identical to direct");
        assert_eq!(body["meta"]["coalesced"].as_bool(), Some(false));
    }

    #[test]
    fn malformed_body_is_a_structured_400() {
        let svc = service();
        for (body, kind) in
            [("{definitely not json", "parse"), ("{\"name\":\"x\",\"nodes\":\"nope\"}", "parse")]
        {
            let response = svc.handle(&post_compile(body, ""), &CancelToken::new()).unwrap();
            assert_eq!(response.status, 400, "{}", response.body);
            let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
            assert_eq!(parsed["error"]["kind"].as_str(), Some(kind), "{}", response.body);
        }
    }

    #[test]
    fn bad_deadline_param_is_rejected() {
        let svc = service();
        let graph = demo_graph(4);
        let request = post_compile(&to_json(&graph), "deadline_ms=soon");
        let response = svc.handle(&request, &CancelToken::new()).unwrap();
        assert_eq!(response.status, 400);
    }

    #[test]
    fn already_cancelled_request_writes_nothing() {
        let svc = service();
        let token = CancelToken::new();
        token.cancel();
        let response = svc.handle(&post_compile(&to_json(&demo_graph(4)), ""), &token);
        assert!(response.is_none(), "disconnected client must get no response");
    }

    #[test]
    fn status_reports_cache_and_flight_counters() {
        let svc = service();
        let graph = demo_graph(4);
        for _ in 0..2 {
            let r = svc.handle(&post_compile(&to_json(&graph), ""), &CancelToken::new()).unwrap();
            assert_eq!(r.status, 200);
        }
        let status = svc.handle(&get("/status"), &CancelToken::new()).unwrap();
        assert_eq!(status.status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&status.body).unwrap();
        assert!(parsed["requests"].as_u64().unwrap() >= 3);
        assert!(parsed["cache"]["hits"].as_u64().unwrap() >= 1, "second compile hits the cache");
        assert_eq!(parsed["singleflight"]["leads"].as_u64(), Some(2));
        assert!(parsed["compile_latency"]["count"].as_u64().unwrap() >= 2);
        // The scheduler race counters accumulate only over cold compiles
        // (the second request replayed from the cache).
        assert_eq!(parsed["scheduler"]["compiles"].as_u64(), Some(2));
        assert!(parsed["scheduler"]["bound_pruned"].as_u64().is_some());
        assert!(parsed["scheduler"]["bound_beaten_exits"].as_u64().is_some());
        assert!(parsed["scheduler"]["race_cutoffs"].as_u64().is_some());
    }

    #[test]
    fn unknown_routes_and_methods_are_clean_errors() {
        let svc = service();
        let token = CancelToken::new();
        assert_eq!(svc.handle(&get("/nope"), &token).unwrap().status, 404);
        assert_eq!(svc.handle(&get("/compile"), &token).unwrap().status, 405);
        let health = svc.handle(&get("/healthz"), &token).unwrap();
        assert_eq!(health.status, 200);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_compile() {
        const N: usize = 6;
        // A backend whose first compile blocks until the test opens the
        // gate. This makes the schedule deterministic on any machine: the
        // leader is parked inside its compile while the other N-1 requests
        // pile up as flight waiters, and only then does the gate open.
        struct GatedBackend {
            inner: AdaptiveBackend,
            gate: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
        }
        impl GatedBackend {
            fn wait_for_gate(&self) {
                let (open, bell) = &*self.gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = bell.wait(open).unwrap();
                }
            }
        }
        impl SchedulerBackend for GatedBackend {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn config_fingerprint(&self) -> u64 {
                self.inner.config_fingerprint()
            }
            fn schedule(
                &self,
                graph: &Graph,
                ctx: &serenity_core::CompileContext,
            ) -> Result<serenity_core::backend::BackendOutcome, ScheduleError> {
                self.wait_for_gate();
                self.inner.schedule(graph, ctx)
            }
        }

        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let svc = Arc::new(CompileService::new(
            Arc::new(GatedBackend { inner: AdaptiveBackend::default(), gate: Arc::clone(&gate) }),
            Arc::new(CompileCache::new()),
            ServiceConfig::default(),
        ));
        let graph = demo_graph(6);
        let body = to_json(&graph);
        let mut handles = Vec::new();
        for _ in 0..N {
            let (svc, body) = (Arc::clone(&svc), body.clone());
            handles.push(std::thread::spawn(move || {
                svc.handle(&post_compile(&body, ""), &CancelToken::new()).unwrap()
            }));
        }
        // Wait until every non-leader request is blocked on the leader's
        // flight, then let the leader's compile proceed.
        let deadline = Instant::now() + Duration::from_secs(30);
        while svc.flights.stats().waiting < (N - 1) as u64 {
            assert!(Instant::now() < deadline, "waiters never joined the flight");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let (open, bell) = &*gate;
            *open.lock().unwrap() = true;
            bell.notify_all();
        }
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let results: Vec<serde_json::Value> = responses
            .iter()
            .map(|r| {
                assert_eq!(r.status, 200, "{}", r.body);
                let v: serde_json::Value = serde_json::from_str(&r.body).unwrap();
                v["result"].clone()
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(*r, results[0], "coalesced results must be bit-identical");
        }
        let status = svc.handle(&get("/status"), &CancelToken::new()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&status.body).unwrap();
        let leads = parsed["singleflight"]["leads"].as_u64().unwrap();
        let coalesced = parsed["singleflight"]["coalesced"].as_u64().unwrap();
        assert_eq!(leads, 1, "exactly one request ran the compile");
        assert_eq!(coalesced, (N - 1) as u64, "every other request shared the result");
    }

    #[test]
    fn health_route_reports_liveness_and_overload() {
        let svc = service();
        let health = svc.handle(&get("/health"), &CancelToken::new()).unwrap();
        assert_eq!(health.status, 200, "{}", health.body);
        let parsed: serde_json::Value = serde_json::from_str(&health.body).unwrap();
        assert_eq!(parsed["live"].as_bool(), Some(true));
        assert_eq!(parsed["ready"].as_bool(), Some(true));
        assert_eq!(parsed["overloaded"].as_bool(), Some(false));

        // Saturate the gauge the way a full accept queue would.
        svc.robustness().queue_capacity.store(2, Ordering::Relaxed);
        svc.robustness().queue_depth.store(2, Ordering::Relaxed);
        let health = svc.handle(&get("/health"), &CancelToken::new()).unwrap();
        assert_eq!(health.status, 503);
        let parsed: serde_json::Value = serde_json::from_str(&health.body).unwrap();
        assert_eq!(parsed["overloaded"].as_bool(), Some(true));
    }

    #[test]
    fn injected_panic_degrades_onto_the_fallback_ladder() {
        use serenity_core::BackendRegistry;
        let plan = Arc::new(FaultPlan::parse("compile-panic=1", 7).unwrap());
        let svc = CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig {
                fault: Some(Arc::clone(&plan)),
                fallback: vec![BackendRegistry::standard().create("kahn").unwrap()],
                ..ServiceConfig::default()
            },
        );
        let graph = demo_graph(4);
        let response =
            svc.handle(&post_compile(&to_json(&graph), ""), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{}", response.body);
        assert_eq!(
            parsed["meta"]["degradation"]["fallback_backend"].as_str(),
            Some("kahn"),
            "{}",
            response.body
        );
        let attempts = parsed["meta"]["degradation"]["attempts"].as_array().unwrap();
        assert!(
            attempts[0]["error"].as_str().unwrap().contains("panic"),
            "provenance must record the panicked rung: {}",
            response.body
        );
        assert!(parsed["result"]["peak_bytes"].as_u64().unwrap() > 0);

        // The injected charge is burnt: the next compile is healthy, and
        // its meta must NOT carry the degraded markers.
        let graph2 = demo_graph(6);
        let response =
            svc.handle(&post_compile(&to_json(&graph2), ""), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert!(parsed["meta"].get("degraded").is_none(), "{}", response.body);

        let status = svc.handle(&get("/status"), &CancelToken::new()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&status.body).unwrap();
        assert_eq!(parsed["robustness"]["degraded_responses"].as_u64(), Some(1));
        assert_eq!(parsed["robustness"]["faults_injected"].as_u64(), Some(1));
    }

    #[test]
    fn error_kinds_are_exhaustive_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for kind in ErrorKind::ALL {
            assert!(seen.insert(kind.as_str()), "duplicate kind string: {kind}");
            assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(seen.len(), ErrorKind::ALL.len());
        assert_eq!(ErrorKind::parse("no-such-kind"), None);
        // Every kind string the IR importer can produce folds into the
        // taxonomy (so `handle_compile` never falls back to Parse for a
        // kind we actually know).
        for import_kind in ["parse", "limit", "node", "structure"] {
            assert!(
                ErrorKind::parse(import_kind).is_some(),
                "importer kind {import_kind:?} missing from ErrorKind"
            );
        }
    }

    #[test]
    fn verify_param_attaches_a_certificate() {
        let svc = service();
        let graph = demo_graph(4);
        let response =
            svc.handle(&post_compile(&to_json(&graph), "verify=1"), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        let cert = &parsed["meta"]["verification"];
        assert_eq!(cert["nodes"].as_u64(), Some(graph.len() as u64), "{}", response.body);
        assert_eq!(
            cert["peak_bytes"].as_u64(),
            parsed["result"]["peak_bytes"].as_u64(),
            "certificate peak must match the served peak: {}",
            response.body
        );

        // Without the flag the response carries no verification field —
        // and is byte-identical in `result` to the verified one.
        let response =
            svc.handle(&post_compile(&to_json(&graph), ""), &CancelToken::new()).unwrap();
        let unverified: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert!(unverified["meta"].get("verification").is_none(), "{}", response.body);
        assert_eq!(unverified["result"], parsed["result"]);
    }

    #[test]
    fn capacity_param_attaches_capacity_meta() {
        let svc = service();
        let graph = demo_graph(4);

        // A 1-byte capacity: nothing fits, and traffic is null because
        // even a single working set overflows.
        let response =
            svc.handle(&post_compile(&to_json(&graph), "capacity=1"), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        let capacity = &parsed["meta"]["capacity"];
        assert_eq!(capacity["capacity_bytes"].as_u64(), Some(1), "{}", response.body);
        assert_eq!(capacity["fits"].as_bool(), Some(false));
        assert_eq!(capacity["feasible"].as_bool(), Some(false));
        assert!(capacity["traffic"].is_null());
        assert!(capacity["spill_bytes"].as_u64().unwrap() > 0);

        // A generous capacity under the traffic objective: fits, zero
        // traffic, and the report names the objective.
        let peak = parsed["result"]["peak_bytes"].as_u64().unwrap();
        let query = format!("capacity={}&objective=traffic", peak * 2);
        let response =
            svc.handle(&post_compile(&to_json(&graph), &query), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        let capacity = &parsed["meta"]["capacity"];
        assert_eq!(capacity["objective"].as_str(), Some("traffic"));
        assert_eq!(capacity["fits"].as_bool(), Some(true));
        assert_eq!(capacity["traffic"].as_u64(), Some(0));

        // Unconstrained responses carry no capacity key at all.
        let response =
            svc.handle(&post_compile(&to_json(&graph), ""), &CancelToken::new()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert!(parsed["meta"].get("capacity").is_none(), "{}", response.body);

        // Bad values are structured 400s.
        for query in
            ["capacity=0", "capacity=lots", "objective=traffic", "capacity=64&objective=maximal"]
        {
            let response =
                svc.handle(&post_compile(&to_json(&graph), query), &CancelToken::new()).unwrap();
            assert_eq!(response.status, 400, "query {query}: {}", response.body);
        }
    }

    #[test]
    fn search_budget_param_is_a_structured_budget_413_without_a_ladder() {
        let svc = service();
        let graph = demo_graph(4);
        let response = svc
            .handle(&post_compile(&to_json(&graph), "search_budget=1"), &CancelToken::new())
            .unwrap();
        assert_eq!(response.status, 413, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert_eq!(parsed["error"]["kind"].as_str(), Some("budget"), "{}", response.body);
        assert!(response.retry_after, "budget refusal with no ladder should advertise a retry");
        assert_eq!(svc.robustness().budget_exhausted.load(Ordering::Relaxed), 1);

        // A nonsense budget value is a parse error, not a refusal.
        let response = svc
            .handle(&post_compile(&to_json(&graph), "search_budget=lots"), &CancelToken::new())
            .unwrap();
        assert_eq!(response.status, 400);
    }

    #[test]
    fn server_wide_budget_caps_the_request_budget() {
        let svc = CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig { search_budget: Some(1), ..ServiceConfig::default() },
        );
        let graph = demo_graph(4);
        // The request asks for a huge budget, but the server caps it at 1
        // byte: the compile must still be refused.
        let response = svc
            .handle(&post_compile(&to_json(&graph), "search_budget=999999999"), &CancelToken::new())
            .unwrap();
        assert_eq!(response.status, 413, "{}", response.body);
    }

    #[test]
    fn budget_exhaustion_degrades_onto_the_ladder_with_a_passing_certificate() {
        use serenity_core::BackendRegistry;
        let svc = CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig {
                search_budget: Some(1),
                fallback: vec![BackendRegistry::standard().create("kahn").unwrap()],
                ..ServiceConfig::default()
            },
        );
        let graph = demo_graph(4);
        let response =
            svc.handle(&post_compile(&to_json(&graph), "verify=1"), &CancelToken::new()).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: serde_json::Value = serde_json::from_str(&response.body).unwrap();
        assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{}", response.body);
        assert!(
            parsed["meta"]["degradation"]["attempts"][0]["error"]
                .as_str()
                .unwrap_or("")
                .contains("exceeded the budget"),
            "first rung should record the budget trip: {}",
            response.body
        );
        assert!(
            parsed["meta"]["verification"]["peak_bytes"].as_u64().is_some(),
            "degraded answer must still carry a passing certificate: {}",
            response.body
        );
        assert!(svc.robustness().budget_exhausted.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_route_is_gated() {
        let open = service();
        let response = open
            .handle(
                &Request {
                    method: "POST".to_string(),
                    path: "/shutdown".to_string(),
                    query: String::new(),
                    headers: Vec::new(),
                    body: Vec::new(),
                },
                &CancelToken::new(),
            )
            .unwrap();
        assert_eq!(response.status, 200);
        assert!(response.shutdown);

        let locked = CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig::default(),
        );
        let response = locked
            .handle(
                &Request {
                    method: "POST".to_string(),
                    path: "/shutdown".to_string(),
                    query: String::new(),
                    headers: Vec::new(),
                    body: Vec::new(),
                },
                &CancelToken::new(),
            )
            .unwrap();
        assert_eq!(response.status, 400);
        assert!(!response.shutdown);
    }
}
