//! The SERENITY compile **service**: the paper's one-graph-at-a-time
//! compiler turned into a long-running process serving heavy traffic.
//!
//! The paper compiles each irregularly wired network once, offline. The
//! workloads that motivate a *service* — NAS loops emitting families of
//! near-duplicate cells, edge-deployment pipelines recompiling on every
//! model push — hammer the compiler with many small, highly repetitive
//! requests. Three mechanisms turn that repetition into throughput:
//!
//! 1. **The process-wide [`CompileCache`]**
//!    ([`serenity_core::cache`]): structurally equal graphs replay stored
//!    schedules bit-identically instead of re-running the DP/beam search.
//!    The service adds the two pieces batch compiles never needed — disk
//!    persistence (a restarted service reloads its shards and starts warm)
//!    and TinyLFU admission (one-shot request floods cannot evict the hot
//!    working set).
//! 2. **Single-flight coalescing** ([`singleflight`]): concurrent
//!    *identical* requests — same backend configuration, same graph
//!    structure — elect one leader to compile while the rest wait and
//!    share its result. The burst a cache can't absorb (all arrivals miss
//!    before the first insert) collapses to one compile.
//! 3. **Per-request deadlines and disconnect cancellation**
//!    ([`service`], [`server`]): every request compiles under the existing
//!    [`CompileOptions`](serenity_core::CompileOptions) plumbing — a
//!    `?deadline_ms=` query bound becomes a compile deadline, and a client
//!    that hangs up flips the request's
//!    [`CancelToken`](serenity_core::CancelToken) so abandoned work stops
//!    consuming the worker pool.
//!
//! The HTTP layer ([`http`]) is a deliberately small hand-rolled HTTP/1.1
//! implementation over `std::net` — a thread-per-connection worker pool
//! behind a bounded accept queue, no async runtime — because the vendor
//! tree is offline and the protocol surface (two routes, JSON bodies) does
//! not justify one.
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//!
//! use serenity_core::backend::AdaptiveBackend;
//! use serenity_core::CompileCache;
//! use serenity_serve::server::{Server, ServerConfig};
//! use serenity_serve::service::{CompileService, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = CompileService::new(
//!     Arc::new(AdaptiveBackend::default()),
//!     Arc::new(CompileCache::new()),
//!     ServiceConfig::default(),
//! );
//! let server = Server::spawn(ServerConfig::default(), Arc::new(service))?;
//! println!("serving on http://{}", server.addr());
//! server.join();
//! # Ok(())
//! # }
//! ```
//!
//! [`CompileCache`]: serenity_core::CompileCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod http;
pub mod server;
pub mod service;
pub mod singleflight;

pub use server::{Server, ServerConfig, ShutdownHandle};
pub use service::{CompileService, ErrorKind, RobustnessStats, ServiceConfig};
pub use singleflight::{FlightOutcome, SingleFlight};
