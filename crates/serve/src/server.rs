//! The socket layer: a `std::net` thread-per-connection server with a
//! bounded accept queue and a per-compile client-disconnect watchdog.
//!
//! # Threading model
//!
//! One acceptor thread pushes accepted connections into a bounded queue;
//! a fixed pool of worker threads pops them and runs the keep-alive
//! request loop. When the queue is full the acceptor answers `503` inline
//! and drops the connection — under overload the service sheds load at
//! the door instead of accumulating unbounded compile backlog.
//!
//! # Disconnect cancellation
//!
//! A compile can run for seconds; a client that hangs up mid-compile
//! should stop consuming a worker. While a compile runs, a watchdog
//! thread `peek`s the connection (via [`TcpStream::try_clone`], with a
//! short shared read timeout): end-of-stream means the client is gone, and
//! the watchdog trips the request's [`CancelToken`] so the pipeline bails
//! at its next check point. This is sound precisely because the worker
//! thread never reads the socket while the compile is in flight — the
//! watchdog is the only reader, and it only peeks. Once the compile
//! finishes the worker restores its own (longer) read timeout before the
//! next keep-alive request.
//!
//! # Panic containment and self-healing
//!
//! Request handling runs under `catch_unwind`: a panic anywhere in the
//! service (a backend bug, an injected fault) is contained to the one
//! request, which gets a structured `500` before its connection closes.
//! The panicking worker thread then *recycles itself* — it spawns an
//! identical replacement and exits — so the pool never shrinks no matter
//! how many requests crash. Both events are counted
//! (`robustness.worker_panics` / `workers_respawned` on `GET /status`).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use serenity_core::fault::panic_message;
use serenity_core::{CancelToken, FaultPoint};

use crate::http::{read_request, write_response, ReadError};
use crate::service::{CompileService, ErrorKind};

/// Socket-level configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads (each handles one connection at a time).
    pub threads: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// starts shedding with `503`.
    pub queue_capacity: usize,
    /// Hard cap on a request body (pre-allocation check against the
    /// declared `Content-Length`).
    pub max_body_bytes: u64,
    /// Per-read socket timeout between requests on a keep-alive
    /// connection; an idle connection is closed after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_capacity: 64,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// How often the disconnect watchdog polls the socket while a compile is
/// in flight. Also the shared socket read timeout during that window.
const WATCHDOG_TICK: Duration = Duration::from_millis(100);

struct Inner {
    service: Arc<CompileService>,
    config: ServerConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Live worker threads. Held by `Inner` (not `Server`) because a
    /// worker that recycles itself after a contained panic registers its
    /// replacement here; `Server::join` drains until it is empty.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flips the shutdown flag and wakes every thread that might be
    /// blocked: workers on the condvar, the acceptor via a throwaway
    /// connection to our own listener.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running compile server (see the module docs).
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
}

/// A cloneable remote control for a running [`Server`]: lets a signal
/// monitor (or any other thread) trigger the same graceful drain as
/// [`Server::shutdown`] without borrowing the server itself.
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").field("addr", &self.inner.addr).finish()
    }
}

impl ShutdownHandle {
    /// Begins the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.inner.addr).finish()
    }
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    pub fn spawn(config: ServerConfig, service: Arc<CompileService>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        service.robustness().queue_capacity.store(config.queue_capacity as u64, Ordering::Relaxed);
        let inner = Arc::new(Inner {
            service,
            config,
            addr,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        {
            let mut workers = inner.workers.lock().unwrap_or_else(PoisonError::into_inner);
            for _ in 0..threads {
                let inner = Arc::clone(&inner);
                workers.push(std::thread::spawn(move || worker_loop(&inner)));
            }
        }

        Ok(Server { inner, acceptor: Some(acceptor) })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Asks the server to stop: no new connections are accepted, queued
    /// connections are drained, and workers exit after their current
    /// connection. Returns immediately; use [`Server::join`] to wait.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// A remote control that can trigger the same graceful drain from
    /// another thread (e.g. a SIGTERM monitor) while [`Server::join`]
    /// holds the server itself.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { inner: Arc::clone(&self.inner) }
    }

    /// Blocks until the server has fully stopped (either via
    /// [`Server::shutdown`], a [`ShutdownHandle`], or an authorised
    /// `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers may recycle themselves (registering replacements) while
        // we drain, so re-check until the list is empty.
        loop {
            let handle = {
                let mut workers = self.inner.workers.lock().unwrap_or_else(PoisonError::into_inner);
                workers.pop()
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Inner) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = inner.lock_queue();
        if queue.len() >= inner.config.queue_capacity {
            drop(queue);
            // Shed at the door: a full queue means every worker is busy
            // and a backlog is already waiting. The baked-in Retry-After
            // header tells clients this is transient.
            inner.service.robustness().shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                &error_body(ErrorKind::Overload, "request queue is full"),
                false,
                false,
            );
            continue;
        }
        queue.push_back(stream);
        inner.service.robustness().queue_depth.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        inner.wake.notify_one();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let stream = {
            let mut queue = inner.lock_queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner
                    .wake
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let Some(stream) = stream else { return };
        inner.service.robustness().queue_depth.fetch_sub(1, Ordering::Relaxed);
        if handle_connection(stream, inner) {
            // A request panicked on this thread. The unwind was contained
            // and the client got its 500, but the thread retires anyway
            // and hands its slot to a fresh replacement: the pool never
            // shrinks, and a worker with possibly-poisoned thread-locals
            // never serves another request. Register the replacement
            // BEFORE exiting so `Server::join` cannot observe a gap.
            let replacement = {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || worker_loop(&inner))
            };
            inner.workers.lock().unwrap_or_else(PoisonError::into_inner).push(replacement);
            inner.service.robustness().workers_respawned.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Serves one connection, then shuts the socket down explicitly. Returns
/// whether a request panicked (the worker then recycles itself).
///
/// The explicit `shutdown` matters: a detached watchdog may still hold a
/// cloned fd for up to one tick, and a plain drop would delay the FIN
/// until that clone closes — `shutdown` sends it immediately, so clients
/// reading to end-of-stream see the connection end when the response does.
fn handle_connection(mut stream: TcpStream, inner: &Inner) -> bool {
    let panicked = serve_connection(&mut stream, inner);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    panicked
}

/// Runs the keep-alive request loop on one connection until the client
/// closes, errs, or the server shuts down. Returns whether a request
/// panicked.
fn serve_connection(stream: &mut TcpStream, inner: &Inner) -> bool {
    if stream.set_read_timeout(Some(inner.config.read_timeout)).is_err() {
        return false;
    }
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let request = match read_request(stream, inner.config.max_body_bytes) {
            Ok(request) => request,
            // Normal ends of a connection: peer closed, or went idle past
            // the timeout.
            Err(ReadError::Closed | ReadError::Timeout | ReadError::Io(_)) => return false,
            Err(e @ ReadError::Malformed(_)) => {
                let _ = write_response(
                    stream,
                    400,
                    &error_body(ErrorKind::Http, &e.to_string()),
                    false,
                    false,
                );
                return false;
            }
            // An oversized body is a property of the request, not the
            // moment: no Retry-After on this 413.
            Err(e @ ReadError::BodyTooLarge { .. }) => {
                let _ = write_response(
                    stream,
                    413,
                    &error_body(ErrorKind::Limit, &e.to_string()),
                    false,
                    false,
                );
                return false;
            }
        };
        let keep_alive = request.keep_alive();
        let is_compile = request.method == "POST" && request.path == "/compile";

        let cancel = CancelToken::new();
        let watchdog = if is_compile { spawn_watchdog(stream, &cancel) } else { None };
        // Contain any panic in the service: the one request dies with a
        // structured 500, never the worker (and never the process).
        let handled = catch_unwind(AssertUnwindSafe(|| inner.service.handle(&request, &cancel)));
        if let Some(done) = watchdog {
            // Signal the watchdog and move on WITHOUT joining it: it may
            // be mid-`peek` and joining would add up to a full tick to
            // every response. A lingering watchdog is harmless — `peek`
            // never consumes bytes, and it exits at its next wake-up.
            done.store(true, Ordering::SeqCst);
            // The watchdog shortened the shared read timeout; restore ours
            // before the next keep-alive read.
            if stream.set_read_timeout(Some(inner.config.read_timeout)).is_err() {
                return false;
            }
        }
        let response = match handled {
            Ok(response) => response,
            Err(payload) => {
                inner.service.robustness().worker_panics.fetch_add(1, Ordering::Relaxed);
                let detail = serde_json::to_string(&panic_message(payload.as_ref()))
                    .unwrap_or_else(|_| "\"\"".to_string());
                let body = format!(
                    "{{\"error\":{{\"kind\":\"{}\",\"detail\":{detail}}}}}",
                    ErrorKind::Panic.as_str()
                );
                let _ = write_response(stream, 500, &body, false, false);
                return true;
            }
        };

        let Some(response) = response else {
            // Client disconnected mid-compile: nothing to write.
            return false;
        };
        // Injected socket-reset fault: drop the connection instead of
        // writing the compile response, exactly as a flaky network would.
        if is_compile {
            if let Some(fault) = inner.service.fault() {
                if fault.should_fire(FaultPoint::SocketReset) {
                    inner.service.robustness().socket_resets.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        let wrote = write_response(
            stream,
            response.status,
            &response.body,
            keep_alive,
            response.retry_after,
        )
        .is_ok();
        if response.shutdown {
            inner.begin_shutdown();
            return false;
        }
        if !wrote || !keep_alive {
            return false;
        }
    }
}

/// JSON error body for transport-level failures (the service never saw
/// the request, so this mirrors its `{"error":{kind,detail}}` shape).
fn error_body(kind: ErrorKind, detail: &str) -> String {
    let detail = serde_json::to_string(detail).unwrap_or_else(|_| "\"\"".to_string());
    format!("{{\"error\":{{\"kind\":\"{}\",\"detail\":{detail}}}}}", kind.as_str())
}

/// Watches `stream` for end-of-file while a compile runs, tripping
/// `cancel` if the client goes away. Returns the done flag (the thread is
/// detached — see `handle_connection`), or `None` if the socket could not
/// be cloned (then the compile simply runs without disconnect detection).
fn spawn_watchdog(stream: &TcpStream, cancel: &CancelToken) -> Option<Arc<AtomicBool>> {
    let clone = stream.try_clone().ok()?;
    // Shared with the worker's handle of the socket — restored by the
    // worker after the compile (the worker does not read meanwhile).
    clone.set_read_timeout(Some(WATCHDOG_TICK)).ok()?;
    let done = Arc::new(AtomicBool::new(false));
    let cancel = cancel.clone();
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let mut probe = [0u8; 1];
        while !flag.load(Ordering::SeqCst) {
            match clone.peek(&mut probe) {
                // End of stream: the client hung up.
                Ok(0) => {
                    cancel.cancel();
                    return;
                }
                // Bytes waiting (a pipelined request): the client is
                // alive; stop polling so we don't spin on the ready data.
                Ok(_) => return,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                // Any hard socket error: treat the client as gone.
                Err(_) => {
                    cancel.cancel();
                    return;
                }
            }
        }
    });
    Some(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use serenity_core::backend::AdaptiveBackend;
    use serenity_core::CompileCache;
    use serenity_ir::json::to_json;
    use serenity_ir::{DType, GraphBuilder, Padding};
    use std::io::{Read as _, Write as _};

    fn demo_graph() -> serenity_ir::Graph {
        let mut b = GraphBuilder::new("server-demo");
        let x = b.image_input("x", 8, 8, 4, DType::F32);
        let l = b.conv1x1(x, 4).unwrap();
        let r = b.conv1x1(x, 4).unwrap();
        let cat = b.concat(&[l, r]).unwrap();
        let y = b.conv(cat, 8, (3, 3), (1, 1), Padding::Same).unwrap();
        b.mark_output(y);
        b.finish()
    }

    fn spawn_server() -> Server {
        let service = CompileService::new(
            Arc::new(AdaptiveBackend::default()),
            Arc::new(CompileCache::new()),
            ServiceConfig { allow_shutdown: true, ..ServiceConfig::default() },
        );
        Server::spawn(ServerConfig { threads: 2, ..ServerConfig::default() }, Arc::new(service))
            .unwrap()
    }

    /// Sends one request and reads one full response off the same
    /// connection; returns (status, body).
    fn roundtrip(stream: &mut TcpStream, raw: &str) -> (u16, String) {
        stream.write_all(raw.as_bytes()).unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> (u16, String) {
        let mut bytes = Vec::new();
        let mut byte = [0u8; 1];
        while !bytes.ends_with(b"\r\n\r\n") {
            assert_ne!(stream.read(&mut byte).unwrap(), 0, "connection closed mid-head");
            bytes.push(byte[0]);
        }
        let head = String::from_utf8(bytes).unwrap();
        let status: u16 =
            head.split(' ').nth(1).expect("status line").parse().expect("numeric status");
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string)
            })
            .expect("content-length header")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    fn post(path: &str, body: &str) -> String {
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
    }

    #[test]
    fn end_to_end_compile_over_a_real_socket() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let graph_json = to_json(&demo_graph());

        // Two compiles and a status check on ONE keep-alive connection.
        let (status, body) = roundtrip(&mut stream, &post("/compile", &graph_json));
        assert_eq!(status, 200, "{body}");
        let first: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(first["result"]["peak_bytes"].as_u64().unwrap() > 0);

        let (status, body) = roundtrip(&mut stream, &post("/compile", &graph_json));
        assert_eq!(status, 200);
        let second: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(second["result"], first["result"], "repeat compile is bit-identical");
        assert!(second["meta"]["cache_hits"].as_u64().unwrap() > 0, "second run hits the cache");

        let (status, body) = roundtrip(&mut stream, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(parsed["cache"]["hits"].as_u64().unwrap() > 0);

        drop(stream);
        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_requests_get_clean_http_errors() {
        let server = spawn_server();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let (status, body) = roundtrip(&mut stream, &post("/compile", "{not json"));
        assert_eq!(status, 400, "{body}");

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let (status, _) = roundtrip(&mut stream, "GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let (status, body) = roundtrip(&mut stream, "BOGUS\r\n\r\n");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("http"), "{body}");

        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_route_stops_the_server() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let (status, body) = roundtrip(
            &mut stream,
            "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 200, "{body}");
        // join() returning proves the acceptor and all workers exited.
        server.join();
    }

    #[test]
    fn client_disconnect_mid_compile_is_survivable() {
        let server = spawn_server();
        let graph_json = to_json(&demo_graph());
        // Fire a compile and hang up without reading the response.
        {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(post("/compile", &graph_json).as_bytes()).unwrap();
        } // dropped: client gone
          // The server must still answer subsequent requests normally.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let (status, body) = roundtrip(&mut stream, &post("/compile", &graph_json));
        assert_eq!(status, 200, "{body}");
        server.shutdown();
        server.join();
    }
}
