//! Lock-free request-latency histograms for `GET /status`.
//!
//! Latencies land in logarithmic (power-of-two) microsecond buckets, so
//! the whole histogram is a fixed array of atomic counters: recording is
//! two relaxed `fetch_add`s and one `fetch_max`, cheap enough to sit on
//! the hot path of every request. Quantiles read the bucket counts and
//! report the upper bound of the bucket containing the requested rank —
//! at most 2× off, which is plenty to tell a 50 µs cache hit from a 50 ms
//! cold compile. (The benchmark harness computes its headline p50/p99 from
//! exact client-side samples; this histogram is the *server's* always-on
//! view.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Serialize;

/// Number of power-of-two buckets: bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i)` microseconds; bucket 0 is `< 1 µs`. 40 buckets reach
/// ~6.4 days, far beyond any request lifetime.
const BUCKETS: usize = 40;

/// A fixed-size, thread-safe, log-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound (inclusive representative) of a bucket, in microseconds.
    fn upper_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary (approximately consistent under concurrent
    /// writes: counters are read individually, which is fine for
    /// monitoring output).
    pub fn snapshot(&self) -> LatencySummary {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::upper_bound(i);
                }
            }
            Self::upper_bound(BUCKETS - 1)
        };
        let sum = self.sum_micros.load(Ordering::Relaxed);
        LatencySummary {
            count,
            mean_micros: sum.checked_div(count).unwrap_or(0),
            p50_micros: quantile(0.50),
            p90_micros: quantile(0.90),
            p99_micros: quantile(0.99),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a [`LatencyHistogram`], as reported on `GET /status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_micros: u64,
    /// Median (bucket upper bound), microseconds.
    pub p50_micros: u64,
    /// 90th percentile (bucket upper bound), microseconds.
    pub p90_micros: u64,
    /// 99th percentile (bucket upper bound), microseconds.
    pub p99_micros: u64,
    /// Largest single observation, microseconds.
    pub max_micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        // 99 fast observations and one slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(80));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 lands in the 100 µs bucket [64, 128); its upper bound is 127.
        assert_eq!(s.p50_micros, 127);
        assert!(s.p99_micros <= 127, "p99 rank 99 is still a fast sample");
        assert!(s.max_micros >= 80_000);
        assert!(s.mean_micros >= 100 && s.mean_micros < 2000);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..250 {
                        h.record(Duration::from_micros(i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 1000);
        assert_eq!(h.snapshot().count, 1000);
    }
}
