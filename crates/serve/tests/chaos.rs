//! Chaos suite: fault-injection scenarios driven over real sockets.
//!
//! Every scenario uses **count-mode** fault arms (`point=N`), which fire
//! deterministically regardless of seed, so the suite is reproducible on
//! any machine. `SERENITY_FAULT_SEED` (fixed in CI) seeds the plans anyway
//! so probability arms, if ever added here, stay deterministic too.
//!
//! The invariants under test are the PR's headline claims:
//! - injected compile panics never kill the process: each one becomes a
//!   structured 500, the worker respawns, and the pool keeps serving;
//! - a configured degradation ladder turns those panics into degraded 200s
//!   with provenance instead;
//! - persistence faults fail the save without corrupting the previous
//!   snapshot, and corrupt snapshots are quarantined on warm load;
//! - socket resets drop one connection, not the server;
//! - fault-free (and delay-only) runs produce bit-identical schedules.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use serenity_core::backend::AdaptiveBackend;
use serenity_core::fault::FaultPlan;
use serenity_core::registry::BackendRegistry;
use serenity_core::CompileCache;
use serenity_ir::json::to_json;
use serenity_ir::{DType, Graph, GraphBuilder, Padding};
use serenity_serve::server::{Server, ServerConfig};
use serenity_serve::service::{CompileService, ServiceConfig};

/// Seed for the fault plans. CI pins `SERENITY_FAULT_SEED=42`; locally any
/// value works because every arm below is count-mode (seed-independent).
fn seed() -> u64 {
    std::env::var("SERENITY_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// A small cell whose structure varies with `width`, so different widths
/// are distinct cache keys (each one really reaches the compile pipeline).
fn cell(width: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("chaos-cell-{width}"));
    let x = b.image_input("x", 8, 8, 4, DType::F32);
    let l = b.conv1x1(x, width).unwrap();
    let r = b.conv1x1(x, width).unwrap();
    let cat = b.concat(&[l, r]).unwrap();
    let y = b.conv(cat, width, (3, 3), (1, 1), Padding::Same).unwrap();
    b.mark_output(y);
    b.finish()
}

fn spawn(config: ServiceConfig, threads: usize) -> (Server, Arc<CompileService>) {
    let service = Arc::new(CompileService::new(
        Arc::new(AdaptiveBackend::default()),
        Arc::new(CompileCache::new()),
        config,
    ));
    let server =
        Server::spawn(ServerConfig { threads, ..ServerConfig::default() }, Arc::clone(&service))
            .unwrap();
    (server, service)
}

fn post(path: &str, body: &str) -> String {
    format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
}

/// One request on a fresh connection; returns (status, body).
fn roundtrip(addr: &str, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    read_response(&mut stream).expect("server closed the connection without a response")
}

/// Reads one response; `None` if the peer closed before sending a head.
fn read_response(stream: &mut TcpStream) -> Option<(u16, String)> {
    let mut bytes = Vec::new();
    let mut byte = [0u8; 1];
    while !bytes.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => bytes.push(byte[0]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8(bytes).unwrap();
    let status: u16 = head.split(' ').nth(1).expect("status line").parse().expect("status");
    let length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .expect("content-length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).unwrap();
    Some((status, String::from_utf8(body).unwrap()))
}

fn status_json(addr: &str) -> serde_json::Value {
    let (status, body) = roundtrip(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

#[test]
fn injected_panics_become_500s_and_the_pool_heals() {
    const PANICS: usize = 3;
    let plan = FaultPlan::parse(&format!("compile-panic={PANICS}"), seed()).unwrap();
    let (server, _service) =
        spawn(ServiceConfig { fault: Some(Arc::new(plan)), ..ServiceConfig::default() }, 2);
    let addr = server.addr().to_string();

    // The first N distinct compiles each hit the injected panic: the
    // worker answers with a structured 500 and recycles itself.
    for width in 0..PANICS {
        let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(4 + width))));
        assert_eq!(status, 500, "panic {width} not surfaced: {body}");
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["error"]["kind"].as_str(), Some("panic"), "{body}");
        assert!(
            parsed["error"]["detail"].as_str().unwrap_or("").contains("injected"),
            "panic detail should name the injection: {body}"
        );
    }

    // The plan is exhausted: N+1 further compiles all succeed, proving the
    // pool never shrank.
    for width in 0..=PANICS {
        let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(16 + width))));
        assert_eq!(status, 200, "post-panic compile {width} failed: {body}");
    }

    let status = status_json(&addr);
    let robustness = &status["robustness"];
    assert_eq!(robustness["worker_panics"].as_u64(), Some(PANICS as u64));
    assert_eq!(robustness["workers_respawned"].as_u64(), Some(PANICS as u64));
    assert_eq!(robustness["faults_injected"].as_u64(), Some(PANICS as u64));
    assert_eq!(robustness["degraded_responses"].as_u64(), Some(0));

    server.shutdown();
    server.join(); // joins the *respawned* workers — proves none leaked
}

#[test]
fn the_degradation_ladder_turns_panics_into_degraded_200s() {
    let plan = FaultPlan::parse("compile-panic=1", seed()).unwrap();
    let kahn = BackendRegistry::standard().create("kahn").unwrap();
    let (server, _service) = spawn(
        ServiceConfig {
            fault: Some(Arc::new(plan)),
            fallback: vec![kahn],
            ..ServiceConfig::default()
        },
        2,
    );
    let addr = server.addr().to_string();

    let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(6))));
    assert_eq!(status, 200, "ladder did not absorb the panic: {body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{body}");
    let provenance = &parsed["meta"]["degradation"];
    assert_eq!(provenance["fallback_backend"].as_str(), Some("kahn"), "{body}");
    assert!(
        provenance["attempts"][0]["error"].as_str().unwrap_or("").contains("panic"),
        "first attempt should record the panic: {body}"
    );

    // Fault exhausted: a fresh graph compiles healthily, with no degraded
    // markers in the response at all.
    let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(10))));
    assert_eq!(status, 200, "{body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(parsed["meta"].get("degraded").is_none(), "healthy response is unmarked: {body}");

    let status = status_json(&addr);
    assert_eq!(status["robustness"]["degraded_responses"].as_u64(), Some(1));
    assert_eq!(status["robustness"]["worker_panics"].as_u64(), Some(0), "ladder caught it");

    server.shutdown();
    server.join();
}

#[test]
fn persist_faults_fail_the_save_without_touching_the_previous_snapshot() {
    let dir = std::env::temp_dir().join("serenity_chaos_persist");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A healthy service writes snapshot v1.
    let (server, _service) =
        spawn(ServiceConfig { persist_dir: Some(dir.clone()), ..ServiceConfig::default() }, 1);
    let addr = server.addr().to_string();
    let (status, _) = roundtrip(&addr, &post("/compile", &to_json(&cell(4))));
    assert_eq!(status, 200);
    let (status, body) = roundtrip(&addr, &post("/persist", ""));
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
    let snapshot_v1: Vec<(String, Vec<u8>)> = shard_files(&dir);
    assert!(!snapshot_v1.is_empty(), "no shards written by the healthy save");

    // A faulty restart: warm load works, but the next save hits an
    // injected IO error. The v1 snapshot must survive byte-for-byte.
    let plan = FaultPlan::parse("persist-io=1", seed()).unwrap();
    let (server, _service) = spawn(
        ServiceConfig {
            persist_dir: Some(dir.clone()),
            fault: Some(Arc::new(plan)),
            ..ServiceConfig::default()
        },
        1,
    );
    let addr = server.addr().to_string();
    let (status, _) = roundtrip(&addr, &post("/compile", &to_json(&cell(8))));
    assert_eq!(status, 200);
    let (status, body) = roundtrip(&addr, &post("/persist", ""));
    assert_eq!(status, 500, "injected IO error should fail the save: {body}");
    assert_eq!(shard_files(&dir), snapshot_v1, "failed save must not disturb the old snapshot");

    // Fault exhausted: the retry lands and the snapshot grows.
    let (status, body) = roundtrip(&addr, &post("/persist", ""));
    assert_eq!(status, 200, "{body}");
    assert_ne!(shard_files(&dir), snapshot_v1, "retried save should write the new entries");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard files in `dir` as (name, bytes), sorted by name.
fn shard_files(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("shard-") && name.ends_with(".json")
        })
        .map(|e| (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap()))
        .collect();
    files.sort();
    files
}

#[test]
fn corrupt_snapshots_are_quarantined_on_warm_load_and_reported() {
    let dir = std::env::temp_dir().join("serenity_chaos_quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (server, _service) =
        spawn(ServiceConfig { persist_dir: Some(dir.clone()), ..ServiceConfig::default() }, 1);
    let addr = server.addr().to_string();
    let (status, _) = roundtrip(&addr, &post("/compile", &to_json(&cell(4))));
    assert_eq!(status, 200);
    let (status, _) = roundtrip(&addr, &post("/persist", ""));
    assert_eq!(status, 200);
    server.shutdown();
    server.join();

    // Flip one payload byte in the first shard: the checksum no longer
    // matches, so the warm load must quarantine it instead of trusting it.
    let shards = shard_files(&dir);
    let (name, mut bytes) = shards.into_iter().next().expect("a shard exists");
    let last = bytes.len() - 2;
    bytes[last] ^= 0x20;
    std::fs::write(dir.join(&name), &bytes).unwrap();

    let (server, _service) =
        spawn(ServiceConfig { persist_dir: Some(dir.clone()), ..ServiceConfig::default() }, 1);
    let addr = server.addr().to_string();
    let status = status_json(&addr);
    assert!(
        status["robustness"]["shards_quarantined"].as_u64().unwrap() >= 1,
        "quarantine not reported: {status:?}"
    );
    // The poisoned file was moved aside, not deleted and not loaded.
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".quarantined"));
    assert!(quarantined, "corrupt shard should be renamed aside for forensics");

    // And the service still compiles fine on top of the partial snapshot.
    let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(12))));
    assert_eq!(status, 200, "{body}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_resets_drop_one_connection_not_the_server() {
    let plan = FaultPlan::parse("socket-reset=1", seed()).unwrap();
    let (server, _service) =
        spawn(ServiceConfig { fault: Some(Arc::new(plan)), ..ServiceConfig::default() }, 2);
    let addr = server.addr().to_string();

    // The first compile's response is swallowed: the connection just dies.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(post("/compile", &to_json(&cell(4))).as_bytes()).unwrap();
    assert!(
        read_response(&mut stream).is_none(),
        "socket-reset fault should close the connection without a response"
    );

    // The server is unharmed — the same graph now answers (and it was
    // cached by the dropped request's compile).
    let (status, body) = roundtrip(&addr, &post("/compile", &to_json(&cell(4))));
    assert_eq!(status, 200, "{body}");

    let status = status_json(&addr);
    assert_eq!(status["robustness"]["socket_resets"].as_u64(), Some(1));
    assert_eq!(status["robustness"]["worker_panics"].as_u64(), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn fault_free_and_delay_only_runs_are_bit_identical() {
    // Baseline: no fault plan, no ladder.
    let (baseline, _service) = spawn(ServiceConfig::default(), 1);
    let graph_json = to_json(&cell(8));
    let (status, body) = roundtrip(&baseline.addr().to_string(), &post("/compile", &graph_json));
    assert_eq!(status, 200);
    let base: serde_json::Value = serde_json::from_str(&body).unwrap();
    baseline.shutdown();
    baseline.join();

    // A ladder configured but never exercised must not perturb the result,
    // and neither may a delay-only fault (slow-compile changes timing,
    // never bytes).
    let plan = FaultPlan::parse("slow-compile=1:20ms", seed()).unwrap();
    let kahn = BackendRegistry::standard().create("kahn").unwrap();
    let (server, _service) = spawn(
        ServiceConfig {
            fault: Some(Arc::new(plan)),
            fallback: vec![kahn],
            ..ServiceConfig::default()
        },
        1,
    );
    let addr = server.addr().to_string();
    let (status, body) = roundtrip(&addr, &post("/compile", &graph_json));
    assert_eq!(status, 200);
    let slow: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(slow["result"], base["result"], "schedules must be bit-identical");
    assert!(slow["meta"].get("degraded").is_none(), "delay is not degradation");

    let status = status_json(&addr);
    assert_eq!(status["robustness"]["faults_injected"].as_u64(), Some(1));
    assert_eq!(status["robustness"]["degraded_responses"].as_u64(), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn injected_budget_exhaustion_degrades_to_a_verified_answer() {
    let plan = FaultPlan::parse("budget-exhaust=1", seed()).unwrap();
    let kahn = BackendRegistry::standard().create("kahn").unwrap();
    let (server, _service) = spawn(
        ServiceConfig {
            fault: Some(Arc::new(plan)),
            fallback: vec![kahn],
            ..ServiceConfig::default()
        },
        2,
    );
    let addr = server.addr().to_string();

    // The injected budget trip kills the primary rung; the ladder's kahn
    // rung answers, and the answer still certifies independently.
    let (status, body) = roundtrip(&addr, &post("/compile?verify=1", &to_json(&cell(6))));
    assert_eq!(status, 200, "ladder did not absorb the budget trip: {body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{body}");
    assert!(
        parsed["meta"]["degradation"]["attempts"][0]["error"]
            .as_str()
            .unwrap_or("")
            .contains("exceeded the budget"),
        "first attempt should record the budget exhaustion: {body}"
    );
    let cert = &parsed["meta"]["verification"];
    assert_eq!(
        cert["peak_bytes"].as_u64(),
        parsed["result"]["peak_bytes"].as_u64(),
        "degraded answer must carry a passing certificate: {body}"
    );

    let status = status_json(&addr);
    assert!(status["robustness"]["budget_exhausted"].as_u64().unwrap() >= 1, "{status:?}");
    assert_eq!(status["robustness"]["degraded_responses"].as_u64(), Some(1));
    assert_eq!(status["robustness"]["verification_failures"].as_u64(), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn budget_exhaustion_under_a_capacity_target_still_serves_a_certified_annotated_answer() {
    // Two stressors at once: an injected budget trip on the primary rung
    // AND a capacity-constrained compile under the traffic objective. The
    // ladder must still serve — degraded, carrying BOTH a passing
    // certificate and the capacity annotation — with the process alive.
    let plan = FaultPlan::parse("budget-exhaust=1", seed()).unwrap();
    let kahn = BackendRegistry::standard().create("kahn").unwrap();
    let (server, _service) = spawn(
        ServiceConfig {
            fault: Some(Arc::new(plan)),
            fallback: vec![kahn],
            ..ServiceConfig::default()
        },
        2,
    );
    let addr = server.addr().to_string();

    // A 1 KiB capacity is far below any cell's peak: the answer spills.
    let (status, body) = roundtrip(
        &addr,
        &post("/compile?verify=1&capacity=1024&objective=traffic", &to_json(&cell(6))),
    );
    assert_eq!(status, 200, "ladder did not absorb the budget trip: {body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{body}");
    assert!(
        parsed["meta"]["degradation"]["attempts"][0]["error"]
            .as_str()
            .unwrap_or("")
            .contains("exceeded the budget"),
        "first attempt should record the budget exhaustion: {body}"
    );
    // The degraded answer is still independently certified — including the
    // capacity report, which verify() recomputes from its own trace replay.
    let cert = &parsed["meta"]["verification"];
    assert_eq!(
        cert["peak_bytes"].as_u64(),
        parsed["result"]["peak_bytes"].as_u64(),
        "degraded answer must carry a passing certificate: {body}"
    );
    assert_eq!(
        cert["capacity"]["capacity_bytes"].as_u64(),
        Some(1024),
        "certificate must carry the verified capacity report: {body}"
    );
    // And the capacity annotation is in the response meta.
    let capacity = &parsed["meta"]["capacity"];
    assert_eq!(capacity["capacity_bytes"].as_u64(), Some(1024), "{body}");
    assert_eq!(capacity["objective"].as_str(), Some("traffic"), "{body}");
    assert_eq!(capacity["fits"].as_bool(), Some(false), "a 1 KiB capacity cannot fit: {body}");
    assert!(capacity["spill_bytes"].as_u64().unwrap() > 0, "{body}");

    // The process is alive and keeps serving healthy capacity compiles.
    let (status, body) =
        roundtrip(&addr, &post("/compile?capacity=1024&objective=traffic", &to_json(&cell(10))));
    assert_eq!(status, 200, "{body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(parsed["meta"].get("degraded").is_none(), "fault exhausted: {body}");
    assert!(parsed["meta"]["capacity"]["capacity_bytes"].as_u64().is_some(), "{body}");

    let status = status_json(&addr);
    assert!(status["robustness"]["budget_exhausted"].as_u64().unwrap() >= 1, "{status:?}");
    assert_eq!(status["robustness"]["degraded_responses"].as_u64(), Some(1));
    assert_eq!(status["robustness"]["verification_failures"].as_u64(), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn a_real_budget_smaller_than_the_search_needs_degrades_but_stays_alive() {
    // No injection here: a genuinely starved search budget (1 byte) trips
    // live accounting inside the DP/beam engines. The ladder's kahn rung
    // needs no search memory, so the service still answers — degraded,
    // verified, process alive.
    let kahn = BackendRegistry::standard().create("kahn").unwrap();
    let (server, _service) = spawn(
        ServiceConfig { search_budget: Some(1), fallback: vec![kahn], ..ServiceConfig::default() },
        2,
    );
    let addr = server.addr().to_string();

    let (status, body) = roundtrip(&addr, &post("/compile?verify=1", &to_json(&cell(8))));
    assert_eq!(status, 200, "{body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["meta"]["degraded"].as_bool(), Some(true), "{body}");
    assert!(parsed["meta"]["verification"]["peak_bytes"].as_u64().is_some(), "{body}");

    // The process is alive and keeps serving.
    let (status, body) = roundtrip(&addr, &post("/compile?verify=1", &to_json(&cell(12))));
    assert_eq!(status, 200, "{body}");

    let status = status_json(&addr);
    assert!(status["robustness"]["budget_exhausted"].as_u64().unwrap() >= 2, "{status:?}");

    server.shutdown();
    server.join();
}

#[test]
fn health_endpoint_answers_over_the_socket() {
    let (server, _service) = spawn(ServiceConfig::default(), 1);
    let addr = server.addr().to_string();
    let (status, body) = roundtrip(&addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["live"].as_bool(), Some(true));
    assert_eq!(parsed["ready"].as_bool(), Some(true));
    assert_eq!(parsed["overloaded"].as_bool(), Some(false));
    server.shutdown();
    server.join();
}
