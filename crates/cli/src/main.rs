//! `serenity` — command-line interface to the SERENITY scheduler.
//!
//! ```text
//! serenity generate <benchmark-id|swiftnet-full> [-o FILE]
//! serenity schedule <graph.json> [more.json ...] [--scheduler NAME] [--no-rewrite]
//!                   [--allocator greedy|first-fit|none] [--budget-kb N]
//!                   [--threads N] [--cache-bytes N] [--json]
//! serenity dot <graph.json>
//! serenity suite
//! serenity traffic <graph.json> --capacity-kb N [--policy belady|lru|fifo]
//! serenity list
//! ```

use std::process::ExitCode;

mod args;
mod commands;
mod signals;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match commands::run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
