//! Hand-rolled argument parsing (the workspace deliberately avoids
//! dependencies outside its allowed set, so no `clap`).

use serenity_allocator::Strategy;
use serenity_core::capacity::{CapacityObjective, CapacityTarget};
use serenity_core::AdmissionPolicy;
use serenity_memsim::Policy;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  serenity list                                  list benchmark ids
  serenity backends                              list scheduler backends
  serenity suite                                 schedule every benchmark
  serenity generate <id|swiftnet-full> [-o FILE] emit a benchmark graph as JSON
  serenity schedule <graph.json> [more.json ...] [options]
                                                 schedule one or more graphs
                                                 (batch mode shares one
                                                 compile cache across graphs)
      --scheduler <name>      scheduling backend (see `serenity backends`;
                              default adaptive)
      --cache-bytes <N>       byte budget of the process-wide compile cache
                              (default 64 MiB; 0 disables caching)
      --no-rewrite            disable identity graph rewriting
      --rewrite-iters <N>     cap the cost-guided rewrite loop at N accepted
                              candidates (0 disables rewriting; default 32)
      --rewrite-score-backend <name>
                              backend scoring rewrite candidates
                              (default beam; the final winner is always
                              re-scheduled by the full backend)
      --rewrite-threads <N>   worker threads scoring rewrite candidates
                              (default 1; any count is bit-identical)
      --allocator <greedy|first-fit|none>        offset planner (default greedy)
      --budget-kb <N>         fixed soft budget instead of adaptive search
      --capacity-bytes <N>    on-chip capacity: annotate (and verify) each
                              schedule with a fits/traffic capacity report
      --objective <fit|traffic>
                              what the capacity constraint steers (default
                              fit; traffic re-ranks candidate schedules by
                              (fits, off-chip traffic, peak));
                              needs --capacity-bytes
      --threads <N>           DP worker threads (default 1)
      --portfolio-threads <N> racing worker threads of the portfolio backend
                              (default 1 = serial; results are bit-identical
                              at any count)
      --deadline-ms <N>       abort compilation after N milliseconds
      --verify                independently re-check the compiled schedule
                              (topological order, scan-path peak, arena,
                              rewrite replay) and print the certificate;
                              a mismatch fails the command
      --verbose               narrate compile events to stderr
      --json                  machine-readable output
      --map                   print the ASCII arena memory map
  serenity serve [options]                       run the long-lived compile
                                                 service (POST graph JSON to
                                                 /compile, stats on /status)
      --addr <host:port>      bind address (default 127.0.0.1:7878; port 0
                              picks an ephemeral port)
      --threads <N>           worker threads (default 4)
      --queue <N>             accepted connections queued before shedding
                              with 503 (default 64)
      --scheduler <name>      scheduling backend (see `serenity backends`;
                              default adaptive)
      --portfolio-threads <N> racing worker threads of the portfolio backend
                              (default 1 = serial)
      --cache-bytes <N>       byte budget of the shared compile cache
                              (default 64 MiB)
      --admission <lru|tinylfu>
                              cache admission policy (default lru; tinylfu
                              protects the hot working set from one-shot
                              request floods)
      --persist <DIR>         warm-load the cache from DIR at startup and
                              save it there on POST /persist or shutdown
      --deadline-ms <N>       default compile deadline applied to requests
                              without their own ?deadline_ms=
      --max-body-bytes <N>    largest accepted request body
                              (default 8 MiB)
      --allow-shutdown        honour POST /shutdown (for tests/benchmarks)
      --degrade <chain|none>  fallback backends tried in order when the
                              primary fails or panics (comma-separated,
                              e.g. beam,kahn; default beam,kahn; none
                              disables degradation)
      --search-budget-bytes <N>
                              hard cap on live search memory per compile;
                              also caps per-request ?search_budget= values
                              (exceeding it fails the rung into the
                              degradation ladder, or answers 413)
      --fault-plan <spec>     TEST ONLY: arm deterministic fault injection,
                              e.g. compile-panic=2,persist-io=p0.5
                              (seeded by SERENITY_FAULT_SEED, default 0)
  serenity dot <graph.json>                      emit Graphviz Dot
  serenity info <graph.json>                     structural analysis
  serenity traffic <graph.json> --capacity-kb <N> [--policy belady|lru|fifo]
                                                 off-chip traffic of the
                                                 SERENITY schedule";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print benchmark ids.
    List,
    /// Print registered scheduler backend names.
    Backends,
    /// Schedule the whole benchmark suite and print the comparison table.
    Suite,
    /// Emit a benchmark graph as JSON.
    Generate {
        /// Benchmark id or `swiftnet-full`.
        id: String,
        /// Output path (stdout when absent).
        output: Option<String>,
    },
    /// Schedule one or more graphs from JSON files (batch mode: all graphs
    /// compile in one process and share one compile cache).
    Schedule {
        /// Input paths, in compile order (at least one).
        paths: Vec<String>,
        /// Backend name from the registry (`None` = default adaptive, or
        /// DP when a fixed budget is given).
        scheduler: Option<String>,
        /// Disable rewriting.
        no_rewrite: bool,
        /// Iteration cap of the cost-guided rewrite loop (`None` = default).
        rewrite_iters: Option<usize>,
        /// Backend scoring rewrite candidates (`None` = default beam).
        rewrite_score_backend: Option<String>,
        /// Worker threads scoring rewrite candidates.
        rewrite_threads: usize,
        /// Offset planner, `None` to skip allocation.
        allocator: Option<Strategy>,
        /// Fixed soft budget in KiB (adaptive search when absent).
        budget_kb: Option<u64>,
        /// On-chip capacity target (`None` = unconstrained).
        capacity: Option<CapacityTarget>,
        /// DP worker threads.
        threads: usize,
        /// Racing worker threads of the portfolio backend (1 = serial).
        portfolio_threads: usize,
        /// Wall-clock compile deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Compile-cache byte budget (`None` = default 64 MiB, `Some(0)`
        /// disables caching).
        cache_bytes: Option<u64>,
        /// Independently verify each compiled schedule and print (or, with
        /// `--json`, embed) the certificate; a mismatch fails the command.
        verify: bool,
        /// Narrate compile events to stderr.
        verbose: bool,
        /// Emit JSON instead of a table.
        json: bool,
        /// Print the ASCII arena memory map.
        map: bool,
    },
    /// Run the long-lived compile service.
    Serve {
        /// Bind address (`host:port`; port 0 for ephemeral).
        addr: String,
        /// Worker threads.
        threads: usize,
        /// Accept-queue capacity before 503 shedding.
        queue: usize,
        /// Backend name from the registry (`None` = default adaptive).
        scheduler: Option<String>,
        /// Racing worker threads of the portfolio backend (1 = serial).
        portfolio_threads: usize,
        /// Compile-cache byte budget (`None` = default 64 MiB).
        cache_bytes: Option<u64>,
        /// Cache admission policy.
        admission: AdmissionPolicy,
        /// Cache persistence directory (disabled when absent).
        persist: Option<String>,
        /// Default compile deadline in milliseconds for requests without
        /// their own `?deadline_ms=`.
        deadline_ms: Option<u64>,
        /// Largest accepted request body (`None` = default 8 MiB).
        max_body_bytes: Option<u64>,
        /// Whether `POST /shutdown` stops the server.
        allow_shutdown: bool,
        /// Fault-injection plan spec (test only; `None` = no injection).
        fault_plan: Option<String>,
        /// Degradation ladder: comma-separated backend names, `Some("none")`
        /// normalised to an empty chain. `None` = the default ladder.
        degrade: Option<String>,
        /// Server-wide search-memory budget in bytes (`None` = unbudgeted;
        /// also the cap on per-request `?search_budget=` values).
        search_budget_bytes: Option<u64>,
    },
    /// Emit Graphviz Dot for a graph file.
    Dot {
        /// Input path.
        path: String,
    },
    /// Print structural analysis of a graph file.
    Info {
        /// Input path.
        path: String,
    },
    /// Simulate off-chip traffic for the SERENITY schedule of a graph.
    Traffic {
        /// Input path.
        path: String,
        /// On-chip capacity in KiB.
        capacity_kb: u64,
        /// Replacement policy.
        policy: Policy,
    },
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message describing the first problem.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().map(String::as_str);
    let sub = it.next().ok_or("missing subcommand")?;
    match sub {
        "-h" | "--help" | "help" => Err("help requested".into()),
        "list" => Ok(Command::List),
        "backends" => Ok(Command::Backends),
        "suite" => Ok(Command::Suite),
        "generate" => {
            let id = it.next().ok_or("generate: missing benchmark id")?.to_owned();
            let mut output = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-o" | "--output" => {
                        output = Some(it.next().ok_or("generate: -o needs a path")?.to_owned());
                    }
                    other => return Err(format!("generate: unknown flag {other}")),
                }
            }
            Ok(Command::Generate { id, output })
        }
        "schedule" => {
            let path = it.next().ok_or("schedule: missing graph path")?.to_owned();
            let mut paths = vec![path];
            let mut scheduler = None;
            let mut no_rewrite = false;
            let mut rewrite_iters = None;
            let mut rewrite_score_backend = None;
            let mut rewrite_threads = 1usize;
            let mut allocator = Some(Strategy::GreedyBySize);
            let mut budget_kb = None;
            let mut capacity_bytes = None;
            let mut objective = None;
            let mut threads = 1usize;
            let mut portfolio_threads = 1usize;
            let mut deadline_ms = None;
            let mut cache_bytes = None;
            let mut verify = false;
            let mut verbose = false;
            let mut json = false;
            let mut map = false;
            while let Some(flag) = it.next() {
                match flag {
                    more if !more.starts_with('-') => paths.push(more.to_owned()),
                    "--no-rewrite" => no_rewrite = true,
                    "--verify" => verify = true,
                    "--verbose" => verbose = true,
                    "--json" => json = true,
                    "--map" => map = true,
                    "--scheduler" => {
                        scheduler =
                            Some(it.next().ok_or("schedule: --scheduler needs a name")?.to_owned());
                    }
                    "--rewrite-iters" => {
                        let raw = it.next().ok_or("schedule: --rewrite-iters needs a value")?;
                        rewrite_iters =
                            Some(raw.parse::<usize>().map_err(|_| {
                                format!("schedule: bad rewrite iteration cap {raw}")
                            })?);
                    }
                    "--rewrite-score-backend" => {
                        rewrite_score_backend = Some(
                            it.next()
                                .ok_or("schedule: --rewrite-score-backend needs a name")?
                                .to_owned(),
                        );
                    }
                    "--rewrite-threads" => {
                        let raw = it.next().ok_or("schedule: --rewrite-threads needs a value")?;
                        rewrite_threads = raw
                            .parse::<usize>()
                            .map_err(|_| format!("schedule: bad rewrite thread count {raw}"))?;
                        if rewrite_threads == 0 {
                            return Err("schedule: --rewrite-threads must be at least 1".into());
                        }
                    }
                    "--deadline-ms" => {
                        let raw = it.next().ok_or("schedule: --deadline-ms needs a value")?;
                        deadline_ms = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("schedule: bad deadline {raw}"))?,
                        );
                    }
                    "--cache-bytes" => {
                        let raw = it.next().ok_or("schedule: --cache-bytes needs a value")?;
                        cache_bytes = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("schedule: bad cache budget {raw}"))?,
                        );
                    }
                    "--allocator" => {
                        allocator = match it.next().ok_or("schedule: --allocator needs a value")? {
                            "greedy" => Some(Strategy::GreedyBySize),
                            "first-fit" => Some(Strategy::FirstFitArena),
                            "none" => None,
                            other => return Err(format!("schedule: unknown allocator {other}")),
                        };
                    }
                    "--budget-kb" => {
                        let raw = it.next().ok_or("schedule: --budget-kb needs a value")?;
                        budget_kb = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("schedule: bad budget {raw}"))?,
                        );
                    }
                    "--capacity-bytes" => {
                        let raw = it.next().ok_or("schedule: --capacity-bytes needs a value")?;
                        let bytes = raw
                            .parse::<u64>()
                            .map_err(|_| format!("schedule: bad capacity {raw}"))?;
                        if bytes == 0 {
                            return Err("schedule: --capacity-bytes must be at least 1".into());
                        }
                        capacity_bytes = Some(bytes);
                    }
                    "--objective" => {
                        objective = match it.next().ok_or("schedule: --objective needs a value")? {
                            "fit" => Some(CapacityObjective::Fit),
                            "traffic" => Some(CapacityObjective::MinTraffic),
                            other => return Err(format!("schedule: unknown objective {other}")),
                        };
                    }
                    "--threads" => {
                        let raw = it.next().ok_or("schedule: --threads needs a value")?;
                        threads = raw
                            .parse::<usize>()
                            .map_err(|_| format!("schedule: bad thread count {raw}"))?;
                        if threads == 0 {
                            return Err("schedule: --threads must be at least 1".into());
                        }
                    }
                    "--portfolio-threads" => {
                        let raw = it.next().ok_or("schedule: --portfolio-threads needs a value")?;
                        portfolio_threads = raw
                            .parse::<usize>()
                            .map_err(|_| format!("schedule: bad portfolio thread count {raw}"))?;
                        if portfolio_threads == 0 {
                            return Err("schedule: --portfolio-threads must be at least 1".into());
                        }
                    }
                    other => return Err(format!("schedule: unknown flag {other}")),
                }
            }
            if scheduler.is_some() && budget_kb.is_some() {
                return Err("schedule: --budget-kb configures the dp backend and conflicts with \
                     --scheduler; pick one"
                    .into());
            }
            if no_rewrite
                && (rewrite_iters.is_some()
                    || rewrite_score_backend.is_some()
                    || rewrite_threads != 1)
            {
                return Err("schedule: --rewrite-iters/--rewrite-score-backend/--rewrite-threads \
                     configure the rewrite loop and conflict with --no-rewrite; pick one"
                    .into());
            }
            if rewrite_iters == Some(0) && rewrite_score_backend.is_some() {
                return Err("schedule: --rewrite-iters 0 disables the rewrite loop, so \
                     --rewrite-score-backend would be ignored; drop one"
                    .into());
            }
            let capacity = match (capacity_bytes, objective) {
                (Some(bytes), obj) => Some(CapacityTarget {
                    capacity_bytes: bytes,
                    objective: obj.unwrap_or_default(),
                }),
                (None, Some(_)) => {
                    return Err("schedule: --objective steers the capacity constraint and \
                         needs --capacity-bytes"
                        .into())
                }
                (None, None) => None,
            };
            Ok(Command::Schedule {
                paths,
                scheduler,
                no_rewrite,
                rewrite_iters,
                rewrite_score_backend,
                rewrite_threads,
                allocator,
                budget_kb,
                capacity,
                threads,
                portfolio_threads,
                deadline_ms,
                cache_bytes,
                verify,
                verbose,
                json,
                map,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7878".to_owned();
            let mut threads = 4usize;
            let mut queue = 64usize;
            let mut scheduler = None;
            let mut portfolio_threads = 1usize;
            let mut cache_bytes = None;
            let mut admission = AdmissionPolicy::Lru;
            let mut persist = None;
            let mut deadline_ms = None;
            let mut max_body_bytes = None;
            let mut allow_shutdown = false;
            let mut fault_plan = None;
            let mut degrade = None;
            let mut search_budget_bytes = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--allow-shutdown" => allow_shutdown = true,
                    "--fault-plan" => {
                        fault_plan =
                            Some(it.next().ok_or("serve: --fault-plan needs a spec")?.to_owned());
                    }
                    "--degrade" => {
                        degrade =
                            Some(it.next().ok_or("serve: --degrade needs a chain")?.to_owned());
                    }
                    "--addr" => addr = it.next().ok_or("serve: --addr needs a value")?.to_owned(),
                    "--scheduler" => {
                        scheduler =
                            Some(it.next().ok_or("serve: --scheduler needs a name")?.to_owned());
                    }
                    "--persist" => {
                        persist =
                            Some(it.next().ok_or("serve: --persist needs a path")?.to_owned());
                    }
                    "--admission" => {
                        admission = match it.next().ok_or("serve: --admission needs a value")? {
                            "lru" => AdmissionPolicy::Lru,
                            "tinylfu" => AdmissionPolicy::TinyLfu,
                            other => {
                                return Err(format!("serve: unknown admission policy {other}"))
                            }
                        };
                    }
                    "--threads" => {
                        let raw = it.next().ok_or("serve: --threads needs a value")?;
                        threads = raw
                            .parse::<usize>()
                            .map_err(|_| format!("serve: bad thread count {raw}"))?;
                        if threads == 0 {
                            return Err("serve: --threads must be at least 1".into());
                        }
                    }
                    "--portfolio-threads" => {
                        let raw = it.next().ok_or("serve: --portfolio-threads needs a value")?;
                        portfolio_threads = raw
                            .parse::<usize>()
                            .map_err(|_| format!("serve: bad portfolio thread count {raw}"))?;
                        if portfolio_threads == 0 {
                            return Err("serve: --portfolio-threads must be at least 1".into());
                        }
                    }
                    "--queue" => {
                        let raw = it.next().ok_or("serve: --queue needs a value")?;
                        queue = raw
                            .parse::<usize>()
                            .map_err(|_| format!("serve: bad queue capacity {raw}"))?;
                        if queue == 0 {
                            return Err("serve: --queue must be at least 1".into());
                        }
                    }
                    "--cache-bytes" => {
                        let raw = it.next().ok_or("serve: --cache-bytes needs a value")?;
                        cache_bytes = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("serve: bad cache budget {raw}"))?,
                        );
                    }
                    "--deadline-ms" => {
                        let raw = it.next().ok_or("serve: --deadline-ms needs a value")?;
                        deadline_ms = Some(
                            raw.parse::<u64>().map_err(|_| format!("serve: bad deadline {raw}"))?,
                        );
                    }
                    "--max-body-bytes" => {
                        let raw = it.next().ok_or("serve: --max-body-bytes needs a value")?;
                        max_body_bytes = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("serve: bad body limit {raw}"))?,
                        );
                    }
                    "--search-budget-bytes" => {
                        let raw = it.next().ok_or("serve: --search-budget-bytes needs a value")?;
                        let bytes = raw
                            .parse::<u64>()
                            .map_err(|_| format!("serve: bad search budget {raw}"))?;
                        if bytes == 0 {
                            return Err("serve: --search-budget-bytes 0 would refuse every \
                                 compile; give it a budget"
                                .into());
                        }
                        search_budget_bytes = Some(bytes);
                    }
                    other => return Err(format!("serve: unknown flag {other}")),
                }
            }
            if cache_bytes == Some(0) {
                return Err("serve: --cache-bytes 0 would disable the cache the service is \
                     built around; give it a budget"
                    .into());
            }
            Ok(Command::Serve {
                addr,
                threads,
                queue,
                scheduler,
                portfolio_threads,
                cache_bytes,
                admission,
                persist,
                deadline_ms,
                max_body_bytes,
                allow_shutdown,
                fault_plan,
                degrade,
                search_budget_bytes,
            })
        }
        "dot" => {
            let path = it.next().ok_or("dot: missing graph path")?.to_owned();
            Ok(Command::Dot { path })
        }
        "info" => {
            let path = it.next().ok_or("info: missing graph path")?.to_owned();
            Ok(Command::Info { path })
        }
        "traffic" => {
            let path = it.next().ok_or("traffic: missing graph path")?.to_owned();
            let mut capacity_kb = None;
            let mut policy = Policy::Belady;
            while let Some(flag) = it.next() {
                match flag {
                    "--capacity-kb" => {
                        let raw = it.next().ok_or("traffic: --capacity-kb needs a value")?;
                        capacity_kb = Some(
                            raw.parse::<u64>()
                                .map_err(|_| format!("traffic: bad capacity {raw}"))?,
                        );
                    }
                    "--policy" => {
                        policy = match it.next().ok_or("traffic: --policy needs a value")? {
                            "belady" => Policy::Belady,
                            "lru" => Policy::Lru,
                            "fifo" => Policy::Fifo,
                            other => return Err(format!("traffic: unknown policy {other}")),
                        };
                    }
                    other => return Err(format!("traffic: unknown flag {other}")),
                }
            }
            let capacity_kb = capacity_kb.ok_or("traffic: --capacity-kb is required")?;
            Ok(Command::Traffic { path, capacity_kb, policy })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&args("list")).unwrap(), Command::List);
        assert_eq!(parse(&args("suite")).unwrap(), Command::Suite);
        assert_eq!(parse(&args("dot g.json")).unwrap(), Command::Dot { path: "g.json".into() });
        assert_eq!(parse(&args("info g.json")).unwrap(), Command::Info { path: "g.json".into() });
    }

    #[test]
    fn parses_generate() {
        assert_eq!(
            parse(&args("generate swiftnet-a -o out.json")).unwrap(),
            Command::Generate { id: "swiftnet-a".into(), output: Some("out.json".into()) }
        );
    }

    #[test]
    fn parses_schedule_flags() {
        let cmd = parse(&args(
            "schedule g.json --no-rewrite --allocator first-fit --budget-kb 256 --threads 4 --json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                paths: vec!["g.json".into()],
                scheduler: None,
                no_rewrite: true,
                rewrite_iters: None,
                rewrite_score_backend: None,
                rewrite_threads: 1,
                allocator: Some(Strategy::FirstFitArena),
                budget_kb: Some(256),
                capacity: None,
                threads: 4,
                portfolio_threads: 1,
                deadline_ms: None,
                cache_bytes: None,
                verify: false,
                verbose: false,
                json: true,
                map: false,
            }
        );
    }

    #[test]
    fn parses_batch_paths_and_cache_budget() {
        let cmd = parse(&args("schedule a.json b.json c.json --cache-bytes 1048576")).unwrap();
        match cmd {
            Command::Schedule { paths, cache_bytes, .. } => {
                assert_eq!(paths, vec!["a.json", "b.json", "c.json"]);
                assert_eq!(cache_bytes, Some(1_048_576));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        // 0 disables caching; non-numeric budgets are rejected.
        assert!(parse(&args("schedule g.json --cache-bytes 0")).is_ok());
        assert!(parse(&args("schedule g.json --cache-bytes lots")).is_err());
        // Positional paths may come after flags too.
        let cmd = parse(&args("schedule a.json --json b.json")).unwrap();
        match cmd {
            Command::Schedule { paths, json, .. } => {
                assert_eq!(paths, vec!["a.json", "b.json"]);
                assert!(json);
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn schedule_defaults() {
        let cmd = parse(&args("schedule g.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                paths: vec!["g.json".into()],
                scheduler: None,
                no_rewrite: false,
                rewrite_iters: None,
                rewrite_score_backend: None,
                rewrite_threads: 1,
                allocator: Some(Strategy::GreedyBySize),
                budget_kb: None,
                capacity: None,
                threads: 1,
                portfolio_threads: 1,
                deadline_ms: None,
                cache_bytes: None,
                verify: false,
                verbose: false,
                json: false,
                map: false,
            }
        );
    }

    #[test]
    fn parses_verify_flag() {
        let cmd = parse(&args("schedule g.json --verify")).unwrap();
        match cmd {
            Command::Schedule { verify, .. } => assert!(verify),
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn parses_rewrite_loop_flags() {
        let cmd =
            parse(&args("schedule g.json --rewrite-iters 3 --rewrite-score-backend dp")).unwrap();
        match cmd {
            Command::Schedule { rewrite_iters, rewrite_score_backend, .. } => {
                assert_eq!(rewrite_iters, Some(3));
                assert_eq!(rewrite_score_backend.as_deref(), Some("dp"));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        // 0 is valid (disables rewriting); conflicts with --no-rewrite, and
        // with a score backend that could never run.
        assert!(parse(&args("schedule g.json --rewrite-iters 0")).is_ok());
        assert!(parse(&args("schedule g.json --no-rewrite --rewrite-iters 2")).is_err());
        assert!(parse(&args("schedule g.json --no-rewrite --rewrite-score-backend beam")).is_err());
        assert!(
            parse(&args("schedule g.json --rewrite-iters 0 --rewrite-score-backend dp")).is_err()
        );
        assert!(parse(&args("schedule g.json --rewrite-iters lots")).is_err());
    }

    #[test]
    fn parses_rewrite_threads() {
        let cmd = parse(&args("schedule g.json --rewrite-threads 4")).unwrap();
        match cmd {
            Command::Schedule { rewrite_threads, .. } => assert_eq!(rewrite_threads, 4),
            other => panic!("unexpected parse {other:?}"),
        }
        assert!(parse(&args("schedule g.json --rewrite-threads 0")).is_err());
        assert!(parse(&args("schedule g.json --rewrite-threads lots")).is_err());
        assert!(parse(&args("schedule g.json --no-rewrite --rewrite-threads 2")).is_err());
    }

    #[test]
    fn parses_serve_defaults_and_flags() {
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 4,
                queue: 64,
                scheduler: None,
                portfolio_threads: 1,
                cache_bytes: None,
                admission: AdmissionPolicy::Lru,
                persist: None,
                deadline_ms: None,
                max_body_bytes: None,
                allow_shutdown: false,
                fault_plan: None,
                degrade: None,
                search_budget_bytes: None,
            }
        );
        let cmd = parse(&args(
            "serve --addr 0.0.0.0:0 --threads 8 --queue 16 --scheduler dp \
             --portfolio-threads 2 --cache-bytes 1048576 --admission tinylfu \
             --persist /tmp/cache --deadline-ms 500 --max-body-bytes 4096 \
             --allow-shutdown --fault-plan compile-panic=2 --degrade beam,kahn \
             --search-budget-bytes 16777216",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "0.0.0.0:0".into(),
                threads: 8,
                queue: 16,
                scheduler: Some("dp".into()),
                portfolio_threads: 2,
                cache_bytes: Some(1_048_576),
                admission: AdmissionPolicy::TinyLfu,
                persist: Some("/tmp/cache".into()),
                deadline_ms: Some(500),
                max_body_bytes: Some(4096),
                allow_shutdown: true,
                fault_plan: Some("compile-panic=2".into()),
                degrade: Some("beam,kahn".into()),
                search_budget_bytes: Some(16_777_216),
            }
        );
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(parse(&args("serve --threads 0")).is_err());
        assert!(parse(&args("serve --portfolio-threads 0")).is_err());
        assert!(parse(&args("serve --queue 0")).is_err());
        assert!(parse(&args("serve --admission random")).is_err());
        assert!(parse(&args("serve --cache-bytes 0")).is_err());
        assert!(parse(&args("serve --deadline-ms soon")).is_err());
        assert!(parse(&args("serve --fault-plan")).is_err());
        assert!(parse(&args("serve --degrade")).is_err());
        assert!(parse(&args("serve --search-budget-bytes 0")).is_err());
        assert!(parse(&args("serve --search-budget-bytes lots")).is_err());
        assert!(parse(&args("serve --bogus")).is_err());
    }

    #[test]
    fn parses_capacity_target() {
        let cmd = parse(&args("schedule g.json --capacity-bytes 98304")).unwrap();
        match cmd {
            Command::Schedule { capacity, .. } => {
                assert_eq!(capacity, Some(CapacityTarget::fit(98_304)));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        let cmd =
            parse(&args("schedule g.json --capacity-bytes 98304 --objective traffic")).unwrap();
        match cmd {
            Command::Schedule { capacity, .. } => {
                assert_eq!(capacity, Some(CapacityTarget::min_traffic(98_304)));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        // --objective is meaningless without a capacity; zero and garbage
        // capacities are rejected.
        assert!(parse(&args("schedule g.json --objective traffic")).is_err());
        assert!(parse(&args("schedule g.json --capacity-bytes 64 --objective maximal")).is_err());
        assert!(parse(&args("schedule g.json --capacity-bytes 0")).is_err());
        assert!(parse(&args("schedule g.json --capacity-bytes lots")).is_err());
    }

    #[test]
    fn parses_traffic() {
        let cmd = parse(&args("traffic g.json --capacity-kb 256 --policy lru")).unwrap();
        assert_eq!(
            cmd,
            Command::Traffic { path: "g.json".into(), capacity_kb: 256, policy: Policy::Lru }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&args("bogus")).is_err());
        assert!(parse(&args("schedule")).is_err());
        assert!(parse(&args("schedule g.json --allocator martian")).is_err());
        assert!(parse(&args("schedule g.json --threads 0")).is_err());
        assert!(parse(&args("schedule g.json --deadline-ms lots")).is_err());
        assert!(parse(&args("schedule g.json --scheduler dp --budget-kb 64")).is_err());
        assert!(parse(&args("traffic g.json")).is_err());
    }

    #[test]
    fn parses_scheduler_selection() {
        assert_eq!(parse(&args("backends")).unwrap(), Command::Backends);
        let cmd = parse(&args(
            "schedule g.json --scheduler portfolio --portfolio-threads 4 \
             --deadline-ms 5000 --verbose",
        ))
        .unwrap();
        match cmd {
            Command::Schedule { scheduler, portfolio_threads, deadline_ms, verbose, .. } => {
                assert_eq!(scheduler.as_deref(), Some("portfolio"));
                assert_eq!(portfolio_threads, 4);
                assert_eq!(deadline_ms, Some(5000));
                assert!(verbose);
            }
            other => panic!("unexpected parse {other:?}"),
        }
        assert!(parse(&args("schedule g.json --portfolio-threads 0")).is_err());
        assert!(parse(&args("schedule g.json --portfolio-threads lots")).is_err());
    }
}
