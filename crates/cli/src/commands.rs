//! Command implementations.

use std::sync::Arc;
use std::time::Duration;

use serenity_core::backend::{AdaptiveBackend, CompileEvent, DpBackend, SchedulerBackend};
use serenity_core::budget::BudgetConfig;
use serenity_core::cache::{AdmissionPolicy, CompileCache, CompileCacheConfig};
use serenity_core::dp::DpConfig;
use serenity_core::pipeline::{RewriteMode, Serenity};
use serenity_core::registry::{BackendRegistry, PortfolioBackend};
use serenity_core::rewrite::RewriteSearchConfig;
use serenity_ir::{dot, json, Graph};
use serenity_memsim::Policy;
use serenity_nets::{suite, swiftnet};

use crate::args::Command;

/// Executes a parsed command.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::List => list(),
        Command::Backends => backends(),
        Command::Suite => run_suite(),
        Command::Generate { id, output } => generate(&id, output.as_deref()),
        Command::Schedule {
            paths,
            scheduler,
            no_rewrite,
            rewrite_iters,
            rewrite_score_backend,
            rewrite_threads,
            allocator,
            budget_kb,
            capacity,
            threads,
            portfolio_threads,
            deadline_ms,
            cache_bytes,
            verify,
            verbose,
            json,
            map,
        } => {
            let options = ScheduleOptions {
                scheduler,
                no_rewrite,
                rewrite_iters,
                rewrite_score_backend,
                rewrite_threads,
                allocator,
                budget_kb,
                capacity,
                threads,
                portfolio_threads,
                deadline_ms,
                cache_bytes,
                verify,
                verbose,
                json,
                map,
            };
            schedule(&paths, options)
        }
        Command::Serve {
            addr,
            threads,
            queue,
            scheduler,
            portfolio_threads,
            cache_bytes,
            admission,
            persist,
            deadline_ms,
            max_body_bytes,
            allow_shutdown,
            fault_plan,
            degrade,
            search_budget_bytes,
        } => serve(ServeOptions {
            addr,
            threads,
            queue,
            scheduler,
            portfolio_threads,
            cache_bytes,
            admission,
            persist,
            deadline_ms,
            max_body_bytes,
            allow_shutdown,
            fault_plan,
            degrade,
            search_budget_bytes,
        }),
        Command::Dot { path } => {
            let graph = load(&path)?;
            print!("{}", dot::to_dot(&graph));
            Ok(())
        }
        Command::Info { path } => {
            let graph = load(&path)?;
            info(&graph);
            Ok(())
        }
        Command::Traffic { path, capacity_kb, policy } => traffic(&path, capacity_kb, policy),
    }
}

fn info(graph: &Graph) {
    let a = serenity_ir::analysis::GraphAnalysis::of(graph);
    println!("graph            : {}", graph.name());
    println!("nodes / edges    : {} / {}", a.nodes, a.edges);
    println!("depth            : {}", a.depth);
    println!("max frontier     : {}", a.max_frontier);
    println!("interior cuts    : {}", a.cut_count);
    println!(
        "activations      : {:.1} KiB total, {:.1} KiB largest",
        a.total_activation_bytes as f64 / 1024.0,
        a.max_activation_bytes as f64 / 1024.0
    );
    println!("peak lower bound : {:.1} KiB", a.peak_lower_bound as f64 / 1024.0);
    println!("kahn peak        : {:.1} KiB", a.kahn_peak_bytes as f64 / 1024.0);
    println!("headroom         : {:.2}x", a.headroom());
    let path = serenity_ir::analysis::critical_path(graph);
    println!(
        "critical path    : {} nodes ({} .. {})",
        path.len(),
        path.first().map(|&n| graph.node(n).name.as_str()).unwrap_or("-"),
        path.last().map(|&n| graph.node(n).name.as_str()).unwrap_or("-")
    );
}

fn list() -> Result<(), String> {
    for b in suite() {
        println!("{:<18} {:<26} {} nodes", b.id, b.name, b.graph.len());
    }
    println!("{:<18} {:<26} {} nodes", "swiftnet-full", "SwiftNet (3 cells)", 62);
    Ok(())
}

fn backends() -> Result<(), String> {
    for name in BackendRegistry::standard().names() {
        println!("{name}");
    }
    Ok(())
}

fn generate(id: &str, output: Option<&str>) -> Result<(), String> {
    let graph = graph_by_id(id)?;
    let rendered = json::to_json(&graph);
    match output {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

fn graph_by_id(id: &str) -> Result<Graph, String> {
    if id == "swiftnet-full" {
        return Ok(swiftnet::swiftnet());
    }
    serenity_nets::suite::by_id(id)
        .map(|b| b.graph)
        .ok_or_else(|| format!("unknown benchmark id {id} (try `serenity list`)"))
}

fn load(path: &str) -> Result<Graph, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::from_json(&raw).map_err(|e| format!("invalid graph in {path}: {e}"))
}

/// Parsed `serenity schedule` flags, bundled.
struct ScheduleOptions {
    scheduler: Option<String>,
    no_rewrite: bool,
    rewrite_iters: Option<usize>,
    rewrite_score_backend: Option<String>,
    rewrite_threads: usize,
    allocator: Option<serenity_allocator::Strategy>,
    budget_kb: Option<u64>,
    capacity: Option<serenity_core::capacity::CapacityTarget>,
    threads: usize,
    portfolio_threads: usize,
    deadline_ms: Option<u64>,
    cache_bytes: Option<u64>,
    verify: bool,
    verbose: bool,
    json: bool,
    map: bool,
}

fn pick_backend(options: &ScheduleOptions) -> Result<Arc<dyn SchedulerBackend>, String> {
    if options.portfolio_threads != 1 && options.scheduler.as_deref() != Some("portfolio") {
        return Err("--portfolio-threads only applies to `--scheduler portfolio`; the flag races \
             portfolio members, not a single backend"
            .into());
    }
    if let Some(name) = &options.scheduler {
        // `--threads` configures the DP inner loop; honor it for the
        // backends that have one and reject it elsewhere rather than
        // silently running single-threaded.
        match (name.as_str(), options.threads) {
            ("dp", threads) => {
                return Ok(Arc::new(DpBackend::with_config(DpConfig {
                    threads,
                    ..DpConfig::default()
                })));
            }
            ("adaptive", threads) => {
                return Ok(Arc::new(AdaptiveBackend::with_config(BudgetConfig {
                    threads,
                    ..BudgetConfig::default()
                })));
            }
            ("portfolio", 1) => {
                return Ok(Arc::new(
                    PortfolioBackend::standard().threads(options.portfolio_threads),
                ));
            }
            (_, 1) => {}
            (other, _) => {
                return Err(format!(
                    "--threads only applies to the dp and adaptive backends, not `{other}`"
                ));
            }
        }
        return BackendRegistry::standard().create(name).ok_or_else(|| {
            format!(
                "unknown scheduler `{name}` (available: {})",
                BackendRegistry::standard().names().join(", ")
            )
        });
    }
    Ok(match options.budget_kb {
        Some(kb) => Arc::new(DpBackend::with_config(DpConfig {
            budget: Some(kb * 1024),
            threads: options.threads,
            ..DpConfig::default()
        })),
        None => Arc::new(AdaptiveBackend::with_config(BudgetConfig {
            threads: options.threads,
            ..BudgetConfig::default()
        })),
    })
}

fn compiler(
    options: &ScheduleOptions,
    cache: Option<&Arc<CompileCache>>,
) -> Result<Serenity, String> {
    // `--rewrite-iters 0` means "off", like --no-rewrite.
    let rewrite = if options.no_rewrite || options.rewrite_iters == Some(0) {
        RewriteMode::Off
    } else {
        RewriteMode::IfBeneficial
    };
    let mut builder = Serenity::builder()
        .rewrite(rewrite)
        .backend(pick_backend(options)?)
        .allocator(options.allocator);
    if let Some(cache) = cache {
        builder = builder.compile_cache(Arc::clone(cache));
    }
    let mut search = RewriteSearchConfig { threads: options.rewrite_threads, ..Default::default() };
    if let Some(iters) = options.rewrite_iters.filter(|&n| n > 0) {
        search.max_iterations = iters;
    }
    builder = builder.rewrite_search(search);
    if let Some(name) = &options.rewrite_score_backend {
        let scorer = BackendRegistry::standard().create(name).ok_or_else(|| {
            format!(
                "unknown rewrite score backend `{name}` (available: {})",
                BackendRegistry::standard().names().join(", ")
            )
        })?;
        builder = builder.rewrite_score_backend(scorer);
    }
    if let Some(ms) = options.deadline_ms {
        builder = builder.deadline(Duration::from_millis(ms));
    }
    if let Some(target) = options.capacity {
        builder = builder.capacity_target(target);
    }
    if options.verbose {
        builder = builder.on_event(|event| eprintln!("{}", render_event(event)));
    }
    Ok(builder.build())
}

fn render_event(event: &CompileEvent) -> String {
    match event {
        CompileEvent::RewriteApplied { rule, concat, consumer, branches } => {
            format!("rewrite  : {rule} at {concat}->{consumer} ({branches} branches)")
        }
        CompileEvent::CandidateStarted { rewritten, nodes } => {
            let which = if *rewritten { "rewritten" } else { "original" };
            format!("candidate: scheduling the {which} graph ({nodes} nodes)")
        }
        CompileEvent::CandidateKept { rewritten, peak_bytes } => {
            let which = if *rewritten { "rewritten" } else { "original" };
            format!("candidate: kept the {which} graph at {:.1} KiB", *peak_bytes as f64 / 1024.0)
        }
        CompileEvent::SegmentScheduled { index, nodes, peak_bytes } => format!(
            "segment  : #{index} ({nodes} nodes) peak {:.1} KiB",
            *peak_bytes as f64 / 1024.0
        ),
        CompileEvent::SegmentMemoHit { index, nodes, peak_bytes } => format!(
            "memo hit : segment #{index} ({nodes} nodes) replayed at {:.1} KiB",
            *peak_bytes as f64 / 1024.0
        ),
        CompileEvent::SegmentCacheHit { index, nodes, peak_bytes } => format!(
            "cache hit: segment #{index} ({nodes} nodes) replayed at {:.1} KiB",
            *peak_bytes as f64 / 1024.0
        ),
        CompileEvent::CacheReport { hits, misses, evictions, entries, entry_bytes } => format!(
            "cache    : {hits} hits / {} lookups, {evictions} evictions, \
             {entries} entries ({:.1} KiB resident)",
            hits + misses,
            *entry_bytes as f64 / 1024.0
        ),
        CompileEvent::RewriteCandidateScored { rule, concat, consumer, peak_bytes, .. } => {
            format!(
                "scored   : {rule} at {concat}->{consumer} -> {:.1} KiB",
                *peak_bytes as f64 / 1024.0
            )
        }
        CompileEvent::RewriteCandidateKept { rule, concat, consumer, iteration, peak_bytes } => {
            format!(
                "kept     : iter {iteration}: {rule} at {concat}->{consumer} ({:.1} KiB)",
                *peak_bytes as f64 / 1024.0
            )
        }
        CompileEvent::RewriteCandidateRejected { rule, concat, consumer, .. } => {
            format!("rejected : {rule} at {concat}->{consumer}")
        }
        CompileEvent::RewriteSearchFinished {
            iterations,
            candidates,
            stop,
            memo_hits,
            memo_misses,
            initial_peak_bytes,
            final_peak_bytes,
        } => format!(
            "search   : {iterations} iters, {candidates} candidates, stop {stop}, \
             memo {memo_hits}/{} hits, peak {:.1} -> {:.1} KiB",
            memo_hits + memo_misses,
            *initial_peak_bytes as f64 / 1024.0,
            *final_peak_bytes as f64 / 1024.0
        ),
        CompileEvent::BudgetProbe { budget, flag } => {
            format!("probe    : tau {:.1} KiB -> {flag:?}", *budget as f64 / 1024.0)
        }
        CompileEvent::BackendStarted { name } => format!("backend  : {name} started"),
        CompileEvent::BackendSkipped { name } => {
            format!("skipped  : {name} (an exact member already won the race)")
        }
        CompileEvent::BackendChosen { name, peak_bytes } => {
            format!("chosen   : {name} at peak {:.1} KiB", *peak_bytes as f64 / 1024.0)
        }
        other => format!("event    : {other:?}"),
    }
}

fn schedule(paths: &[String], options: ScheduleOptions) -> Result<(), String> {
    // One process-wide cache shared by every graph of the invocation
    // (`--cache-bytes 0` disables it): later graphs replay segments the
    // earlier ones already scheduled.
    let cache = match options.cache_bytes {
        Some(0) => None,
        Some(bytes) => Some(Arc::new(CompileCache::with_budget(bytes))),
        None => Some(Arc::new(CompileCache::new())),
    };
    let compiler = compiler(&options, cache.as_ref())?;
    let mut compiled_all = Vec::with_capacity(paths.len());
    for (index, path) in paths.iter().enumerate() {
        let graph = load(path)?;
        let compiled = compiler.compile(&graph).map_err(|e| format!("{path}: {e}"))?;
        // `--verify` re-derives the result through the independent checker;
        // a mismatch fails the whole invocation rather than printing a
        // schedule the checker would not certify.
        let certificate = if options.verify {
            Some(
                serenity_core::verify::verify(&graph, &compiled)
                    .map_err(|e| format!("{path}: verification failed: {e}"))?,
            )
        } else {
            None
        };
        if !options.json {
            if index > 0 {
                println!();
            }
            print_compiled(&compiled, options.map);
            if let Some(cert) = &certificate {
                println!(
                    "verified      : {} nodes, peak {:.1} KiB, {} rewrite(s) replayed",
                    cert.nodes,
                    cert.peak_bytes as f64 / 1024.0,
                    cert.rewrites_replayed
                );
            }
        }
        compiled_all.push((compiled, certificate));
    }
    let cache_stats = cache.as_ref().map(|c| c.stats());
    if options.json {
        let cache_json = cache_stats
            .map(|s| {
                serde_json::json!({
                    "hits": s.hits,
                    "misses": s.misses,
                    "hit_rate": s.hit_rate(),
                    "insertions": s.insertions,
                    "evictions": s.evictions,
                    "rejected_admissions": s.rejected_admissions,
                    "entries": s.entries,
                    "entry_bytes": s.entry_bytes,
                    "budget_bytes": s.budget_bytes,
                })
            })
            .unwrap_or(serde_json::Value::Null);
        // Single-graph invocations keep the original flat report shape;
        // batch invocations wrap the per-graph reports.
        let report = if let [(only, cert)] = &compiled_all[..] {
            report_json(only, cert.as_ref(), &cache_json)
        } else {
            let reports: Vec<serde_json::Value> = compiled_all
                .iter()
                .map(|(c, cert)| report_json(c, cert.as_ref(), &serde_json::Value::Null))
                .collect();
            serde_json::json!({ "graphs": reports, "cache": cache_json })
        };
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else if let Some(stats) = cache_stats {
        println!(
            "\ncompile cache : {} hits / {} lookups ({:.0}% hit rate), {} insertions, \
             {} evictions, {:.1} KiB resident",
            stats.hits,
            stats.hits + stats.misses,
            stats.hit_rate() * 100.0,
            stats.insertions,
            stats.evictions,
            stats.entry_bytes as f64 / 1024.0
        );
    }
    Ok(())
}

fn report_json(
    compiled: &serenity_core::pipeline::CompiledSchedule,
    certificate: Option<&serenity_core::VerifiedCertificate>,
    cache: &serde_json::Value,
) -> serde_json::Value {
    let verification = certificate
        .map(|c| serde_json::to_value(c).expect("certificate serializes"))
        .unwrap_or(serde_json::Value::Null);
    serde_json::json!({
        "cache": cache.clone(),
        "verification": verification,
        "graph": compiled.graph.name(),
        "nodes": compiled.graph.len(),
        "peak_bytes": compiled.peak_bytes,
        "baseline_peak_bytes": compiled.baseline_peak_bytes,
        "reduction": compiled.reduction_factor(),
        "arena_bytes": compiled.arena_bytes(),
        "rewrites": compiled.rewrites,
        "rewrite_search": compiled.rewrite_search,
        "partition": compiled.partition,
        "cache_hits": compiled.stats.cache_hits,
        "cache_misses": compiled.stats.cache_misses,
        "bound_pruned": compiled.stats.bound_pruned,
        "bound_beaten_exits": compiled.stats.bound_beaten_exits,
        "race_cutoffs": compiled.stats.race_cutoffs,
        "compile_time_us": compiled.compile_time.as_micros() as u64,
        "capacity": compiled.capacity,
        "order": compiled.schedule.order,
    })
}

fn print_compiled(compiled: &serenity_core::pipeline::CompiledSchedule, map: bool) {
    println!("graph         : {}", compiled.graph.name());
    println!("nodes         : {}", compiled.graph.len());
    println!("baseline peak : {:.1} KiB", compiled.baseline_peak_bytes as f64 / 1024.0);
    println!("serenity peak : {:.1} KiB", compiled.peak_bytes as f64 / 1024.0);
    println!("reduction     : {:.2}x", compiled.reduction_factor());
    if let Some(arena) = compiled.arena_bytes() {
        println!("arena size    : {:.1} KiB", arena as f64 / 1024.0);
    }
    if let Some(report) = &compiled.capacity {
        let fits = if report.fits {
            "yes".to_owned()
        } else {
            format!("no (spill {:.1} KiB)", report.spill_bytes as f64 / 1024.0)
        };
        let traffic = match &report.traffic {
            Some(t) => format!("{:.1} KiB", t.traffic_kib()),
            None => "infeasible".to_owned(),
        };
        println!(
            "capacity      : {:.1} KiB (objective {})",
            report.capacity_bytes as f64 / 1024.0,
            report.objective
        );
        println!("fits / traffic: {fits} / {traffic}");
    }
    println!("rewrites      : {}", compiled.rewrites.len());
    if let Some(search) = &compiled.rewrite_search {
        println!(
            "rewrite loop  : {} iters, {} candidates, stop {}, memo {}/{} hits{}",
            search.iterations,
            search.candidates_scored,
            search.stop,
            search.memo_hits,
            search.memo_hits + search.memo_misses,
            if search.kept || search.applied == 0 {
                ""
            } else {
                " (winner discarded by final comparison)"
            }
        );
    }
    if compiled.stats.cache_hits + compiled.stats.cache_misses > 0 {
        println!(
            "cache         : {} hits / {} lookups",
            compiled.stats.cache_hits,
            compiled.stats.cache_hits + compiled.stats.cache_misses
        );
    }
    let stats = &compiled.stats;
    if stats.bound_pruned + stats.bound_beaten_exits + stats.race_cutoffs > 0 {
        println!(
            "race          : {} states bound-pruned, {} searches cut off, {} members skipped",
            stats.bound_pruned, stats.bound_beaten_exits, stats.race_cutoffs
        );
    }
    println!("segments      : {:?}", compiled.partition.segment_sizes);
    println!("compile time  : {:.1?}", compiled.compile_time);
    if map {
        match compiled.arena.as_ref() {
            Some(plan) => {
                println!("\narena memory map:");
                print!("{}", plan.render_ascii(64));
            }
            None => println!("(no arena: allocator disabled)"),
        }
    }
}

/// Parsed `serenity serve` flags, bundled.
struct ServeOptions {
    addr: String,
    threads: usize,
    queue: usize,
    scheduler: Option<String>,
    portfolio_threads: usize,
    cache_bytes: Option<u64>,
    admission: AdmissionPolicy,
    persist: Option<String>,
    deadline_ms: Option<u64>,
    max_body_bytes: Option<u64>,
    allow_shutdown: bool,
    fault_plan: Option<String>,
    degrade: Option<String>,
    search_budget_bytes: Option<u64>,
}

/// Resolves `--degrade` into a fallback ladder. `None` means the default
/// `beam,kahn` chain; `none` disables degradation entirely.
fn degradation_ladder(spec: Option<&str>) -> Result<Vec<Arc<dyn SchedulerBackend>>, String> {
    let spec = spec.unwrap_or("beam,kahn");
    if spec == "none" {
        return Ok(Vec::new());
    }
    let registry = BackendRegistry::standard();
    spec.split(',')
        .map(str::trim)
        .filter(|name| !name.is_empty())
        .map(|name| {
            registry.create(name).ok_or_else(|| {
                format!(
                    "unknown fallback scheduler `{name}` in --degrade (available: {})",
                    registry.names().join(", ")
                )
            })
        })
        .collect()
}

fn serve(options: ServeOptions) -> Result<(), String> {
    use serenity_core::fault::FaultPlan;
    use serenity_serve::server::{Server, ServerConfig};
    use serenity_serve::service::{CompileService, ServiceConfig};

    if options.portfolio_threads != 1 && options.scheduler.as_deref() != Some("portfolio") {
        return Err("--portfolio-threads only applies to `--scheduler portfolio`; the flag races \
             portfolio members, not a single backend"
            .into());
    }
    let backend: Arc<dyn SchedulerBackend> = match options.scheduler.as_deref() {
        None => Arc::new(AdaptiveBackend::default()),
        Some("portfolio") => {
            Arc::new(PortfolioBackend::standard().threads(options.portfolio_threads))
        }
        Some(name) => BackendRegistry::standard().create(name).ok_or_else(|| {
            format!(
                "unknown scheduler `{name}` (available: {})",
                BackendRegistry::standard().names().join(", ")
            )
        })?,
    };
    let fault = match &options.fault_plan {
        None => None,
        Some(spec) => {
            let seed = std::env::var("SERENITY_FAULT_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            let plan = FaultPlan::parse(spec, seed)
                .map_err(|e| format!("invalid --fault-plan `{spec}`: {e}"))?;
            eprintln!("fault injection active: {spec} (seed {seed})");
            Some(Arc::new(plan))
        }
    };
    let fallback = degradation_ladder(options.degrade.as_deref())?;
    let cache_config = CompileCacheConfig {
        max_bytes: options.cache_bytes.unwrap_or(CompileCacheConfig::default().max_bytes),
        admission: options.admission,
        ..CompileCacheConfig::default()
    };
    let cache = Arc::new(CompileCache::with_config(cache_config));
    if let Some(dir) = &options.persist {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create persistence directory {dir}: {e}"))?;
    }
    let service = Arc::new(CompileService::new(
        backend,
        cache,
        ServiceConfig {
            default_deadline: options.deadline_ms.map(Duration::from_millis),
            persist_dir: options.persist.clone().map(std::path::PathBuf::from),
            allow_shutdown: options.allow_shutdown,
            fault,
            fallback,
            search_budget: options.search_budget_bytes,
            ..ServiceConfig::default()
        },
    ));
    let stats = service.cache().stats();
    if options.persist.is_some() && stats.entries > 0 {
        eprintln!(
            "warm start: {} cached schedules ({:.1} KiB) loaded from disk",
            stats.entries,
            stats.entry_bytes as f64 / 1024.0
        );
    }
    let server_config = ServerConfig {
        addr: options.addr.clone(),
        threads: options.threads,
        queue_capacity: options.queue,
        max_body_bytes: options.max_body_bytes.unwrap_or(ServerConfig::default().max_body_bytes),
        ..ServerConfig::default()
    };
    let server = Server::spawn(server_config, Arc::clone(&service))
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    eprintln!("serving on http://{}", server.addr());
    if crate::signals::install() {
        let handle = server.shutdown_handle();
        std::thread::spawn(move || {
            while !crate::signals::triggered() {
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!("shutdown signal received: draining in-flight requests");
            handle.shutdown();
        });
    }
    server.join();
    if let Some(dir) = &options.persist {
        match service.cache().save_to_dir(std::path::Path::new(dir)) {
            Ok(report) => {
                eprintln!("cache persisted: {} shard(s) written to {dir}", report.shards_ok)
            }
            Err(e) => eprintln!("warning: cache persistence to {dir} failed: {e}"),
        }
    }
    Ok(())
}

fn run_suite() -> Result<(), String> {
    println!(
        "{:<26} {:>6} {:>11} {:>11} {:>8}",
        "benchmark", "nodes", "baseline", "serenity", "gain"
    );
    for b in suite() {
        let compiled = Serenity::builder()
            .build()
            .compile(&b.graph)
            .map_err(|e| format!("{}: {e}", b.name))?;
        println!(
            "{:<26} {:>6} {:>9.1}KB {:>9.1}KB {:>7.2}x",
            b.name,
            b.graph.len(),
            compiled.baseline_peak_bytes as f64 / 1024.0,
            compiled.peak_bytes as f64 / 1024.0,
            compiled.reduction_factor(),
        );
    }
    Ok(())
}

fn traffic(path: &str, capacity_kb: u64, policy: Policy) -> Result<(), String> {
    let graph = load(path)?;
    let compiled =
        Serenity::builder().allocator(None).build().compile(&graph).map_err(|e| e.to_string())?;
    let stats = serenity_memsim::simulate(
        &compiled.graph,
        &compiled.schedule.order,
        capacity_kb * 1024,
        policy,
    )
    .map_err(|e| e.to_string())?;
    println!("capacity      : {capacity_kb} KiB ({policy})");
    println!("bytes in      : {:.1} KiB", stats.bytes_in as f64 / 1024.0);
    println!("bytes out     : {:.1} KiB", stats.bytes_out as f64 / 1024.0);
    println!("total traffic : {:.1} KiB", stats.traffic_kib());
    println!("evictions     : {}", stats.evictions);
    println!("peak resident : {:.1} KiB", stats.peak_resident as f64 / 1024.0);
    Ok(())
}
