//! Minimal POSIX signal hookup for graceful shutdown.
//!
//! `serenity serve` should drain on `SIGTERM`/`SIGINT` — stop accepting,
//! finish in-flight requests, persist the cache when configured — instead
//! of dying mid-write. The vendor tree has no `libc`, so the `signal(2)`
//! entry point is declared directly; this is the one place in the
//! workspace that needs `unsafe` (every library crate forbids it).
//!
//! The handler does the only async-signal-safe thing possible: it stores
//! to a static atomic flag. A monitor thread polls the flag and drives
//! the actual shutdown from safe code.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for `SIGINT` and `SIGTERM`.
    /// Returns whether handlers are active.
    pub fn install() -> bool {
        // SAFETY: `signal(2)` with a handler that only stores to a static
        // atomic — the async-signal-safe subset. The casts match the C
        // prototype (`sighandler_t` is a pointer-sized function address).
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        true
    }

    /// Whether a termination signal has arrived since [`install`].
    pub fn triggered() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off Unix; the monitor thread is never started.
    pub fn install() -> bool {
        false
    }

    /// Never triggers off Unix.
    pub fn triggered() -> bool {
        false
    }
}

pub use imp::{install, triggered};
