//! End-to-end tests of the `serenity` binary (spawned as a subprocess).

use std::process::{Command, Output};

fn serenity(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_serenity")).args(args).output().expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn list_names_all_benchmarks() {
    let out = serenity(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for id in ["darts-normal", "swiftnet-a", "randwire-c100-c", "swiftnet-full"] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }
}

#[test]
fn generate_schedule_round_trip() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cell_c.json");
    let path_str = path.to_str().unwrap();

    let out = serenity(&["generate", "swiftnet-c", "-o", path_str]);
    assert!(out.status.success(), "generate failed: {out:?}");
    assert!(path.exists());

    let out = serenity(&["schedule", path_str]);
    assert!(out.status.success(), "schedule failed: {out:?}");
    let text = stdout(&out);
    assert!(text.contains("reduction"));
    assert!(text.contains("serenity peak"));

    let out = serenity(&["schedule", path_str, "--json", "--no-rewrite"]);
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert!(report["peak_bytes"].as_u64().unwrap() > 0);
    assert_eq!(report["rewrites"].as_array().unwrap().len(), 0);
}

#[test]
fn dot_renders_graphviz() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dot_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-b", "-o", path_str]).status.success());

    let out = serenity(&["dot", path_str]);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("digraph"));
}

#[test]
fn traffic_reports_zero_when_fitting() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("traffic_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let out = serenity(&["traffic", path_str, "--capacity-kb", "512"]);
    assert!(out.status.success(), "traffic failed: {out:?}");
    assert!(stdout(&out).contains("total traffic : 0.0 KiB"));
}

#[test]
fn bad_usage_exits_with_code_2() {
    let out = serenity(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = serenity(&["schedule", "/nonexistent/graph.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let out = serenity(&["generate", "not-a-network"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn backends_lists_every_registered_scheduler() {
    let out = serenity(&["backends"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["dp", "adaptive", "beam", "kahn", "dfs", "greedy", "brute-force", "portfolio"] {
        assert!(text.lines().any(|l| l == name), "missing backend {name} in:\n{text}");
    }
}

#[test]
fn scheduler_flag_selects_registered_backends() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("backend_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let mut peaks = Vec::new();
    for name in ["greedy", "kahn", "portfolio"] {
        let out = serenity(&["schedule", path_str, "--scheduler", name, "--json"]);
        assert!(out.status.success(), "--scheduler {name} failed: {out:?}");
        let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
        peaks.push((name, report["peak_bytes"].as_u64().unwrap()));
    }
    // The portfolio is never worse than its members.
    let portfolio = peaks.iter().find(|(n, _)| *n == "portfolio").unwrap().1;
    for (name, peak) in &peaks {
        assert!(portfolio <= *peak, "portfolio ({portfolio}) lost to {name} ({peak})");
    }
}

#[test]
fn threads_flag_drives_parallel_dp_expansion() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("threads_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "randwire-c10-a", "-o", path_str]).status.success());

    // Parallel expansion is deterministic and serial-equal: the dp backend
    // must report the same peak (and order) at any thread count.
    let mut reports = Vec::new();
    for threads in ["1", "4"] {
        let out =
            serenity(&["schedule", path_str, "--scheduler", "dp", "--threads", threads, "--json"]);
        assert!(out.status.success(), "--threads {threads} failed: {out:?}");
        let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
        reports.push(report);
    }
    assert_eq!(reports[0]["peak_bytes"], reports[1]["peak_bytes"]);
    assert_eq!(reports[0]["order"], reports[1]["order"]);
}

#[test]
fn threads_flag_validates_its_argument_and_target() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("threads_bad_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    // Zero threads is a usage error (exit 2, from the parser).
    let out = serenity(&["schedule", path_str, "--scheduler", "dp", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));

    // Threads only make sense for backends with a parallel inner loop.
    let out = serenity(&["schedule", path_str, "--scheduler", "kahn", "--threads", "2"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads only applies"), "stderr: {stderr}");
}

#[test]
fn rewrite_threads_flag_is_serial_equal() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rewrite_threads_cell.json");
    let path_str = path.to_str().unwrap();
    // swiftnet-c has real rewrite sites, so the loop actually runs.
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let mut reports = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = serenity(&["schedule", path_str, "--rewrite-threads", threads, "--json"]);
        assert!(out.status.success(), "--rewrite-threads {threads} failed: {out:?}");
        let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
        reports.push(report);
    }
    for report in &reports[1..] {
        assert_eq!(reports[0]["peak_bytes"], report["peak_bytes"]);
        assert_eq!(reports[0]["order"], report["order"]);
        assert_eq!(reports[0]["rewrites"], report["rewrites"]);
        let serial = &reports[0]["rewrite_search"];
        let parallel = &report["rewrite_search"];
        for field in ["iterations", "candidates_scored", "applied", "memo_hits", "memo_misses"] {
            assert_eq!(serial[field], parallel[field], "summary field {field} diverged");
        }
    }

    // Zero threads is a usage error; combining with --no-rewrite conflicts.
    let out = serenity(&["schedule", path_str, "--rewrite-threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = serenity(&["schedule", path_str, "--no-rewrite", "--rewrite-threads", "2"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_scheduler_fails_with_the_available_names() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unknown_sched_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let out = serenity(&["schedule", path_str, "--scheduler", "martian"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scheduler"), "stderr: {stderr}");
    assert!(stderr.contains("portfolio"), "stderr should list alternatives: {stderr}");
}

#[test]
fn rewrite_loop_flags_drive_the_search() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rewrite_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    // Default run reports the search summary in JSON.
    let out = serenity(&["schedule", path_str, "--json"]);
    assert!(out.status.success(), "schedule failed: {out:?}");
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    let search = &report["rewrite_search"];
    assert!(search.as_object().is_some(), "rewrite_search section missing from JSON report");
    assert!(search["candidates_scored"].as_u64().is_some());
    let default_peak = report["peak_bytes"].as_u64().unwrap();

    // --rewrite-iters 0 disables the loop entirely (like --no-rewrite).
    let out = serenity(&["schedule", path_str, "--rewrite-iters", "0", "--json"]);
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert!(report["rewrite_search"].is_null());
    assert_eq!(report["rewrites"].as_array().unwrap().len(), 0);
    let off_peak = report["peak_bytes"].as_u64().unwrap();
    assert!(default_peak <= off_peak, "rewrite loop must never lose to rewrite-off");

    // A custom scoring backend is accepted; an unknown one fails cleanly.
    let out = serenity(&[
        "schedule",
        path_str,
        "--rewrite-iters",
        "2",
        "--rewrite-score-backend",
        "greedy",
        "--json",
    ]);
    assert!(out.status.success(), "custom scorer failed: {out:?}");
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert!(report["rewrite_search"]["iterations"].as_u64().unwrap() <= 2);
    assert!(report["peak_bytes"].as_u64().unwrap() <= off_peak);

    let out = serenity(&["schedule", path_str, "--rewrite-score-backend", "martian"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown rewrite score backend"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn verbose_narrates_the_rewrite_search() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verbose_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let out = serenity(&["schedule", path_str, "--verbose"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("search   :"), "search summary line missing:\n{stderr}");
}

#[test]
fn spent_deadline_aborts_with_a_deadline_error() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("deadline_cell.json");
    let path_str = path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", path_str]).status.success());

    let out = serenity(&["schedule", path_str, "--deadline-ms", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline"));
}

#[test]
fn batch_schedule_shares_the_compile_cache() {
    let dir = std::env::temp_dir().join("serenity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("batch_a.json");
    let b = dir.join("batch_b.json");
    let (a_str, b_str) = (a.to_str().unwrap(), b.to_str().unwrap());
    assert!(serenity(&["generate", "swiftnet-c", "-o", a_str]).status.success());
    assert!(serenity(&["generate", "swiftnet-c", "-o", b_str]).status.success());

    // Two structurally identical graphs in one batch: the second compile
    // must replay the first one's schedules from the shared cache, and
    // both must report identical results.
    let out = serenity(&["schedule", a_str, b_str, "--json"]);
    assert!(out.status.success(), "batch schedule failed: {out:?}");
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    let graphs = report["graphs"].as_array().expect("batch report wraps per-graph reports");
    assert_eq!(graphs.len(), 2);
    assert_eq!(graphs[0]["peak_bytes"], graphs[1]["peak_bytes"]);
    assert_eq!(graphs[0]["order"], graphs[1]["order"]);
    assert!(
        graphs[1]["cache_hits"].as_u64().unwrap() > 0,
        "second graph must hit the cache: {report:?}"
    );
    assert!(report["cache"]["hits"].as_u64().unwrap() > 0);
    assert!(
        report["cache"]["hit_rate"].as_f64().unwrap() > 0.0,
        "JSON cache footer must report the hit rate: {report:?}"
    );
    assert!(report["cache"]["insertions"].as_u64().unwrap() > 0);
    assert_eq!(report["cache"]["rejected_admissions"].as_u64(), Some(0));

    // --cache-bytes 0 disables caching (and the summary shows no cache).
    let out = serenity(&["schedule", a_str, b_str, "--cache-bytes", "0", "--json"]);
    assert!(out.status.success());
    let report: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert!(report["cache"].is_null());
    assert_eq!(report["graphs"][1]["cache_hits"].as_u64(), Some(0));

    // Table mode prints the cache footer for batches, hit rate included.
    let out = serenity(&["schedule", a_str, b_str]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("compile cache :"), "cache footer missing:\n{text}");
    assert!(text.contains("hit rate"), "hit rate missing from footer:\n{text}");
    assert!(text.contains("insertions"), "insertions missing from footer:\n{text}");
}

#[test]
fn serve_subcommand_answers_http_and_shuts_down() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};

    let dir = std::env::temp_dir().join("serenity_cli_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("serve_cell.json");
    let graph_str = graph_path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", graph_str]).status.success());
    let graph_json = std::fs::read_to_string(&graph_path).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_serenity"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--allow-shutdown"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    // The server announces its ephemeral address on stderr once bound.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line.trim().strip_prefix("serving on http://").unwrap_or_else(|| {
        let _ = child.kill();
        panic!("unexpected announcement: {line}");
    });

    let result = (|| -> Result<(), String> {
        let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let request = format!(
            "POST /compile HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{graph_json}",
            graph_json.len()
        );
        stream.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        stream.read_to_string(&mut response).map_err(|e| format!("read: {e}"))?;
        if !response.starts_with("HTTP/1.1 200") {
            return Err(format!("compile over HTTP failed:\n{response}"));
        }
        if !response.contains("\"peak_bytes\"") {
            return Err(format!("response body missing schedule:\n{response}"));
        }

        let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .write_all(
                b"POST /shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                  Content-Length: 0\r\n\r\n",
            )
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        Ok(())
    })();
    if let Err(reason) = result {
        let _ = child.kill();
        panic!("{reason}");
    }
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited uncleanly: {status:?}");
}

/// SIGTERM drains the server gracefully: in-flight work finishes, the
/// process exits cleanly, and `--persist` writes a snapshot on the way out.
#[cfg(unix)]
#[test]
fn serve_drains_and_persists_on_sigterm() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};

    let dir = std::env::temp_dir().join("serenity_cli_sigterm_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("drain_cell.json");
    let graph_str = graph_path.to_str().unwrap();
    assert!(serenity(&["generate", "swiftnet-c", "-o", graph_str]).status.success());
    let graph_json = std::fs::read_to_string(&graph_path).unwrap();
    let persist_dir = dir.join("snapshots");
    let persist_str = persist_dir.to_str().unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_serenity"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--persist", persist_str])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| {
            let _ = child.kill();
            panic!("unexpected announcement: {line}");
        })
        .to_string();

    let result = (|| -> Result<(), String> {
        let mut stream =
            std::net::TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        let request = format!(
            "POST /compile HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{graph_json}",
            graph_json.len()
        );
        stream.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        stream.read_to_string(&mut response).map_err(|e| format!("read: {e}"))?;
        if !response.starts_with("HTTP/1.1 200") {
            return Err(format!("compile over HTTP failed:\n{response}"));
        }
        Ok(())
    })();
    if let Err(reason) = result {
        let _ = child.kill();
        panic!("{reason}");
    }

    let kill =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(kill.success(), "kill -TERM failed");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server did not drain cleanly on SIGTERM: {status:?}");

    // Drain the rest of stderr so the persistence announcement is visible.
    let mut rest = String::new();
    let _ = stderr.read_to_string(&mut rest);
    assert!(
        rest.contains("cache persisted"),
        "missing persistence announcement on stderr:\n{line}{rest}"
    );
    let shards: Vec<_> = std::fs::read_dir(&persist_dir)
        .expect("persist dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("shard-") && name.ends_with(".json")
        })
        .collect();
    assert!(!shards.is_empty(), "no snapshot shards written to {persist_dir:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
