//! Workspace-level property tests: invariants that must hold across crate
//! boundaries on randomly generated graphs.

use proptest::prelude::*;
use serenity::ir::random_dag::{random_dag, RandomDagConfig};
use serenity::prelude::*;
use serenity::sched::baseline;

prop_compose! {
    fn arb_graph()(
        nodes in 2usize..12,
        edge_prob in 0.05f64..0.6,
        seed in any::<u64>(),
    ) -> Graph {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        random_dag(
            &RandomDagConfig {
                nodes,
                edge_prob,
                max_extra_inputs: 3,
                min_bytes: 1,
                max_bytes: 512,
            },
            &mut rng,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_is_optimal_vs_brute_force(graph in arb_graph()) {
        let dp = DpScheduler::new().schedule(&graph).unwrap();
        let bf = baseline::brute_force(&graph).unwrap();
        prop_assert_eq!(dp.schedule.peak_bytes, bf.peak_bytes);
    }

    #[test]
    fn schedules_are_valid_topological_orders(graph in arb_graph()) {
        let dp = DpScheduler::new().schedule(&graph).unwrap();
        prop_assert!(topo::is_order(&graph, &dp.schedule.order));
    }

    #[test]
    fn allocator_plans_never_overlap(graph in arb_graph()) {
        let order = topo::kahn(&graph);
        for strategy in serenity::alloc::Strategy::all() {
            let p = plan(&graph, &order, strategy).unwrap();
            prop_assert!(p.validate().is_ok());
            let live_peak = mem::peak_bytes(&graph, &order).unwrap();
            prop_assert!(p.arena_bytes >= live_peak);
        }
    }

    #[test]
    fn capacity_at_peak_means_zero_traffic(graph in arb_graph()) {
        let order = topo::kahn(&graph);
        let peak = mem::peak_bytes(&graph, &order).unwrap();
        let stats = simulate(&graph, &order, peak, Policy::Belady).unwrap();
        prop_assert_eq!(stats.total_traffic(), 0);
        prop_assert_eq!(stats.peak_resident, peak);
    }

    #[test]
    fn budget_search_matches_plain_dp(graph in arb_graph()) {
        let dp = DpScheduler::new().schedule(&graph).unwrap();
        let asb = AdaptiveSoftBudget::new().search(&graph).unwrap();
        prop_assert_eq!(asb.schedule.peak_bytes, dp.schedule.peak_bytes);
    }

    #[test]
    fn divide_and_conquer_preserves_optimality(graph in arb_graph()) {
        use serenity::sched::backend::DpBackend;
        use serenity::sched::divide::DivideAndConquer;
        let whole = DpScheduler::new().schedule(&graph).unwrap();
        let divided = DivideAndConquer::new()
            .backend(std::sync::Arc::new(DpBackend::default()))
            .schedule(&graph)
            .unwrap();
        prop_assert_eq!(divided.schedule.peak_bytes, whole.schedule.peak_bytes);
    }

    #[test]
    fn every_backend_schedules_validly(graph in arb_graph()) {
        use serenity::sched::backend::CompileContext;
        let registry = BackendRegistry::standard();
        let ctx = CompileContext::unconstrained();
        for name in registry.names() {
            if name == "brute-force" && graph.len() > 12 {
                continue;
            }
            let backend = registry.create(&name).unwrap();
            let outcome = backend.schedule(&graph, &ctx).unwrap();
            prop_assert!(topo::is_order(&graph, &outcome.schedule.order), "{}", name);
            prop_assert_eq!(
                outcome.schedule.peak_bytes,
                mem::peak_bytes(&graph, &outcome.schedule.order).unwrap(),
                "{}", name
            );
        }
    }

    #[test]
    fn lower_bound_is_sound(graph in arb_graph()) {
        let dp = DpScheduler::new().schedule(&graph).unwrap();
        prop_assert!(mem::peak_lower_bound(&graph) <= dp.schedule.peak_bytes);
    }

    #[test]
    fn pipeline_never_loses_to_baseline(graph in arb_graph()) {
        let compiled = Serenity::builder().build().compile(&graph).unwrap();
        prop_assert!(compiled.peak_bytes <= compiled.baseline_peak_bytes);
    }
}
