//! Cross-crate integration tests: the full SERENITY flow — generate →
//! rewrite → schedule → allocate → simulate → (interpret) — through the
//! facade crate's public API only.

use serenity::prelude::*;
use serenity::sched::rewrite::Rewriter;

#[test]
fn compile_and_deploy_swiftnet_cell_a() {
    let graph = serenity::nets::swiftnet::cell_a();
    let compiled = Serenity::builder().build().compile(&graph).unwrap();

    // Schedule is a valid topological order of the compiled graph.
    assert!(topo::is_order(&compiled.graph, &compiled.schedule.order));
    // The reported peak matches the reference accounting.
    let recomputed = mem::peak_bytes(&compiled.graph, &compiled.schedule.order).unwrap();
    assert_eq!(recomputed, compiled.peak_bytes);
    // The arena plan is overlap-free and at least as large as the live peak.
    let arena = compiled.arena.as_ref().unwrap();
    arena.validate().unwrap();
    assert!(arena.arena_bytes >= compiled.peak_bytes);
    // Deploying on a scratchpad the size of the arena produces no traffic.
    let stats =
        simulate(&compiled.graph, &compiled.schedule.order, arena.arena_bytes, Policy::Belady)
            .unwrap();
    assert_eq!(stats.total_traffic(), 0);
}

#[test]
fn rewriting_preserves_network_semantics_through_the_facade() {
    let graph = serenity::nets::swiftnet::cell_a();
    let rewritten = Rewriter::standard().rewrite(&graph);
    assert!(rewritten.changed());

    let input_shape = graph.node(graph.inputs()[0]).shape.dims().to_vec();
    let input = Tensor::random(&input_shape, 99);
    let interp = Interpreter::new(12345);
    let before = interp.run(&graph, std::slice::from_ref(&input)).unwrap();
    let after = interp.run(&rewritten.graph, &[input]).unwrap();
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert!(
            b.approx_eq(a, 1e-4),
            "rewriting changed the output (max diff {})",
            b.max_abs_diff(a)
        );
    }
}

#[test]
fn json_round_trip_preserves_compilation_results() {
    let graph = serenity::nets::swiftnet::cell_b();
    let json = serenity::ir::json::to_json(&graph);
    let back = serenity::ir::json::from_json(&json).unwrap();
    assert_eq!(graph, back);

    let a = Serenity::builder().build().compile(&graph).unwrap();
    let b = Serenity::builder().build().compile(&back).unwrap();
    assert_eq!(a.peak_bytes, b.peak_bytes);
}

#[test]
fn every_suite_benchmark_round_trips_through_json() {
    for b in suite() {
        let json = serenity::ir::json::to_json(&b.graph);
        let back = serenity::ir::json::from_json(&json).unwrap();
        assert_eq!(b.graph, back, "{} JSON round trip", b.name);
    }
}

#[test]
fn dp_schedule_never_loses_to_sampled_orders() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let graph = serenity::nets::swiftnet::cell_c();
    let optimal = DpScheduler::new().schedule(&graph).unwrap().schedule.peak_bytes;
    for _ in 0..200 {
        let order = topo::random(&graph, &mut rng);
        let peak = mem::peak_bytes(&graph, &order).unwrap();
        assert!(optimal <= peak);
    }
}

#[test]
fn traffic_reduction_follows_schedule_quality() {
    // A better schedule can only help (or tie) under the clairvoyant policy
    // at every capacity, per the paper's Figure 11 argument.
    let graph = serenity::nets::swiftnet::cell_c();
    let kahn = baseline::kahn(&graph).unwrap();
    let compiled = Serenity::builder().rewrite(RewriteMode::Off).build().compile(&graph).unwrap();
    for capacity_kb in [48u64, 64, 96] {
        let capacity = capacity_kb * 1024;
        let base = simulate(&graph, &kahn.order, capacity, Policy::Belady);
        let ours = simulate(&compiled.graph, &compiled.schedule.order, capacity, Policy::Belady);
        match (base, ours) {
            (Ok(b), Ok(o)) => assert!(
                o.total_traffic() <= b.total_traffic(),
                "at {capacity_kb} KB: serenity {} vs baseline {}",
                o.total_traffic(),
                b.total_traffic()
            ),
            // The optimized schedule must stay feasible wherever the
            // baseline was.
            (Ok(_), Err(e)) => panic!("serenity infeasible where baseline fits: {e}"),
            (Err(_), _) => {}
        }
    }
}

#[test]
fn full_swiftnet_meets_the_sparkfun_budget_only_with_serenity() {
    // The paper's headline story (§1, §2.2): the 250 KB-class device runs
    // the network only after memory-aware scheduling + rewriting.
    let graph = serenity::nets::swiftnet::swiftnet();
    let kahn = baseline::kahn(&graph).unwrap();
    let baseline_arena = plan(&graph, &kahn.order, Strategy::GreedyBySize).unwrap();
    let compiled = Serenity::builder().build().compile(&graph).unwrap();
    let serenity_arena = compiled.arena.as_ref().unwrap();

    let budget = 250 * 1024;
    assert!(baseline_arena.arena_bytes > budget, "baseline should not fit");
    assert!(serenity_arena.arena_bytes <= budget, "serenity should fit");
}

#[test]
fn compiled_dot_export_is_renderable_text() {
    let graph = serenity::nets::swiftnet::cell_a();
    let rendered = serenity::ir::dot::to_dot(&graph);
    assert!(rendered.starts_with("digraph"));
    assert!(rendered.matches("->").count() >= graph.edge_count());
}
